// Package faultinject is the repo's stdlib-only fault-injection harness:
// named fault points compiled into the serving hot paths that cost one
// atomic pointer load and a nil check when no injector is armed, and fire
// configured faults — panic, delay, forced cancel, injected error — when
// one is. The chaos suite (internal/service/chaos_test.go) and the CI
// chaos job arm it to prove the resilience layer's claims: the process
// survives panics, poisoned sessions are replaced, sheds stay within their
// bounds, and stalled or failing stream writes cannot wedge a handler.
//
// Faults are deterministic by construction: an every=N trigger fires on
// exactly every Nth pass through its point (per-rule atomic counter), and
// a p=F trigger draws from a rand.Rand seeded by the injector's seed, so a
// chaos run replays identically under the same seed and arrival order.
// The package holds ONE process-global armed injector (Enable/Disable):
// fault injection is a whole-process testing mode, not a per-request
// feature, and the global keeps the disabled fast path free of any
// plumbing through the serving layers.
//
// The wire into production code is a single call:
//
//	if err := faultinject.Fire(ctx, faultinject.PointDecide); err != nil {
//		return nil, err
//	}
//
// Fire returns nil when disabled or when no rule triggers; a delay rule
// sleeps (honoring ctx) and then returns nil; cancel and error rules
// return an error the caller propagates like any other failure; a panic
// rule panics with a *Panic value, exercising the recover() boundaries.
package faultinject

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Point names one fault site compiled into the serving layers.
type Point int

const (
	// PointDecide fires in the service's guarded decide step, after a
	// worker slot is held and before the engine runs.
	PointDecide Point = iota
	// PointCacheLookup fires in the /v1/decide handler around the verdict
	// cache lookup (no worker slot held).
	PointCacheLookup
	// PointBatchDrain fires in the batch scheduler's drain step, on the
	// held session behind its panic boundary, before the engine runs.
	PointBatchDrain
	// PointStreamWrite fires in the NDJSON stream writers (/v1/transversals,
	// /v1/mine, /v1/batch rows) before each record is encoded: a delay rule
	// is a slow client-facing write, an error rule a failing one.
	PointStreamWrite
	numPoints
)

var pointNames = [numPoints]string{
	PointDecide:      "decide",
	PointCacheLookup: "cache_lookup",
	PointBatchDrain:  "batch_drain",
	PointStreamWrite: "stream_write",
}

// String returns the point's spec-grammar name.
func (p Point) String() string {
	if p < 0 || p >= numPoints {
		return fmt.Sprintf("point(%d)", int(p))
	}
	return pointNames[p]
}

// Points lists every fault point, in a fixed order — the metrics bridges
// iterate it to preregister one injected-faults counter per point.
func Points() []Point {
	out := make([]Point, numPoints)
	for i := range out {
		out[i] = Point(i)
	}
	return out
}

// Action is what a triggered rule does.
type Action int

const (
	// ActionPanic panics with a *Panic carrying the point.
	ActionPanic Action = iota
	// ActionDelay sleeps the rule's Delay (honoring ctx) and succeeds.
	ActionDelay
	// ActionCancel returns context.Canceled, a forced mid-work cancel.
	ActionCancel
	// ActionError returns an error wrapping ErrInjected.
	ActionError
)

var actionNames = map[Action]string{
	ActionPanic: "panic", ActionDelay: "delay",
	ActionCancel: "cancel", ActionError: "error",
}

func (a Action) String() string { return actionNames[a] }

// ErrInjected is the sentinel wrapped by every ActionError failure, so
// tests and retry loops can tell an injected fault from an organic one.
var ErrInjected = errors.New("injected fault")

// Panic is the value injected panics carry; recover() boundaries and the
// chaos suite recognize it by type.
type Panic struct{ Point Point }

func (p *Panic) String() string { return "injected panic at " + p.Point.String() }

// Rule arms one fault at one point. Exactly one trigger applies: Every > 0
// fires on every Every-th pass through the point (deterministic, counted
// per rule); otherwise Prob in (0, 1] fires with that probability from the
// injector's seeded source. Delay is the sleep for ActionDelay.
type Rule struct {
	Point  Point
	Action Action
	Every  int
	Prob   float64
	Delay  time.Duration
}

// ruleState is one armed rule plus its pass counter.
type ruleState struct {
	Rule
	calls atomic.Int64
}

// Injector is an armed fault configuration. Build one with New or
// ParseSpec and arm it with Enable; it is safe for concurrent Fire calls.
type Injector struct {
	rules [numPoints][]*ruleState
	mu    sync.Mutex // guards rng
	rng   *rand.Rand
}

// New builds an injector over rules, drawing probabilistic triggers from a
// source seeded with seed.
func New(seed int64, rules ...Rule) *Injector {
	inj := &Injector{rng: rand.New(rand.NewSource(seed))}
	for _, r := range rules {
		if r.Point < 0 || r.Point >= numPoints {
			continue
		}
		inj.rules[r.Point] = append(inj.rules[r.Point], &ruleState{Rule: r})
	}
	return inj
}

// active is the process-global armed injector; nil when disabled. Fire's
// disabled fast path is this load plus a nil check.
var active atomic.Pointer[Injector]

// fired counts triggered faults per point for the process lifetime
// (monotone across Enable/Disable cycles — the /metricsz contract).
var fired [numPoints]atomic.Int64

// Enable arms inj process-wide (nil disables, like Disable).
func Enable(inj *Injector) { active.Store(inj) }

// Disable disarms fault injection; Fire returns to its no-op path.
func Disable() { active.Store(nil) }

// Enabled reports whether an injector is armed.
func Enabled() bool { return active.Load() != nil }

// Fired returns the number of faults triggered at p since process start.
func Fired(p Point) int64 {
	if p < 0 || p >= numPoints {
		return 0
	}
	return fired[p].Load()
}

// FiredTotal sums Fired over every point.
func FiredTotal() int64 {
	var n int64
	for i := range fired {
		n += fired[i].Load()
	}
	return n
}

// Fire runs the armed faults for point p, if any. With no injector armed
// it is a nil check; with one armed but no rule triggering it returns nil.
// A triggered delay sleeps then returns nil (or ctx.Err() if ctx fires
// first); cancel and error rules return their error; a panic rule does not
// return.
func Fire(ctx context.Context, p Point) error {
	inj := active.Load()
	if inj == nil {
		return nil
	}
	return inj.fire(ctx, p)
}

func (inj *Injector) fire(ctx context.Context, p Point) error {
	if p < 0 || p >= numPoints {
		return nil
	}
	for _, rs := range inj.rules[p] {
		if !inj.triggers(rs) {
			continue
		}
		fired[p].Add(1)
		switch rs.Action {
		case ActionPanic:
			panic(&Panic{Point: p})
		case ActionDelay:
			if err := sleep(ctx, rs.Delay); err != nil {
				return err
			}
		case ActionCancel:
			return context.Canceled
		case ActionError:
			return fmt.Errorf("%w at %s", ErrInjected, p)
		}
	}
	return nil
}

// triggers decides whether one rule fires on this pass.
func (inj *Injector) triggers(rs *ruleState) bool {
	if rs.Every > 0 {
		return rs.calls.Add(1)%int64(rs.Every) == 0
	}
	if rs.Prob <= 0 {
		return false
	}
	inj.mu.Lock()
	v := inj.rng.Float64()
	inj.mu.Unlock()
	return v < rs.Prob
}

// sleep blocks for d or until ctx is done, whichever comes first.
func sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// ParseSpec builds an injector from the -faults grammar: comma-separated
// clauses, each
//
//	point:action[=delay][:every=N|:p=F]
//
// where point is decide | cache_lookup | batch_drain | stream_write,
// action is panic | cancel | error | delay=DURATION (Go duration syntax),
// and the optional trigger defaults to every=1 (fire on every pass).
//
// Examples:
//
//	decide:panic:every=7
//	stream_write:delay=20ms:p=0.25
//	decide:panic:every=7,batch_drain:panic:every=11,cache_lookup:delay=1ms
func ParseSpec(spec string, seed int64) (*Injector, error) {
	var rules []Rule
	for _, clause := range strings.Split(spec, ",") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		r, err := parseClause(clause)
		if err != nil {
			return nil, fmt.Errorf("fault clause %q: %w", clause, err)
		}
		rules = append(rules, r)
	}
	if len(rules) == 0 {
		return nil, errors.New("empty fault spec")
	}
	return New(seed, rules...), nil
}

func parseClause(clause string) (Rule, error) {
	parts := strings.Split(clause, ":")
	if len(parts) < 2 {
		return Rule{}, errors.New("want point:action[:trigger]")
	}
	r := Rule{Every: 1}
	point := -1
	for i, name := range pointNames {
		if name == parts[0] {
			point = i
		}
	}
	if point < 0 {
		return Rule{}, fmt.Errorf("unknown point %q", parts[0])
	}
	r.Point = Point(point)
	action, delayText, hasDelay := strings.Cut(parts[1], "=")
	switch action {
	case "panic":
		r.Action = ActionPanic
	case "cancel":
		r.Action = ActionCancel
	case "error":
		r.Action = ActionError
	case "delay":
		r.Action = ActionDelay
		if !hasDelay {
			return Rule{}, errors.New("delay needs a duration: delay=20ms")
		}
		d, err := time.ParseDuration(delayText)
		if err != nil || d <= 0 {
			return Rule{}, fmt.Errorf("bad delay %q", delayText)
		}
		r.Delay = d
	default:
		return Rule{}, fmt.Errorf("unknown action %q", action)
	}
	if r.Action != ActionDelay && hasDelay {
		return Rule{}, fmt.Errorf("action %q takes no =value", action)
	}
	for _, opt := range parts[2:] {
		key, val, ok := strings.Cut(opt, "=")
		if !ok {
			return Rule{}, fmt.Errorf("bad trigger %q", opt)
		}
		switch key {
		case "every":
			n, err := strconv.Atoi(val)
			if err != nil || n < 1 {
				return Rule{}, fmt.Errorf("bad every %q", val)
			}
			r.Every, r.Prob = n, 0
		case "p":
			f, err := strconv.ParseFloat(val, 64)
			if err != nil || f <= 0 || f > 1 {
				return Rule{}, fmt.Errorf("bad p %q", val)
			}
			r.Every, r.Prob = 0, f
		default:
			return Rule{}, fmt.Errorf("unknown trigger %q", key)
		}
	}
	return r, nil
}
