package engine

// Portfolio dispatch. Gottlob–Malizia ("Achieving New Upper Bounds for the
// Hypergraph Duality Problem through Logic") underline that no single
// duality algorithm dominates across instance shapes; the Portfolio engine
// therefore selects per instance on cheap features:
//
//   - A side with ≤ 2 edges goes to FK-B, whose small-side base resolves the
//     instance by one dualization of that tiny side — no tree search at all.
//   - Mid-size instances (|G|·|H| below the parallel threshold) go to the
//     serial decomposition: its session-pinnable scratch and lack of spawn
//     overhead beat goroutines while trees are small.
//   - Large instances go to the parallel decomposition — unless the first
//     input is α-acyclic or has degeneracy ≤ 2, the structural classes §6 of
//     the paper singles out: their decomposition trees stay shallow, so the
//     serial walker wins again.
//
// Racing mode hedges the heuristic: the selected engine runs against a
// contrasting one (FK-A against core engines, core against FK picks) under
// a shared context, the first verdict wins and cancels the loser within one
// tree-node/recursion-step boundary.

import (
	"context"
	"runtime"

	"dualspace/internal/core"
	"dualspace/internal/hypergraph"
)

// Selection thresholds (see the package comment above for the rationale).
const (
	// fkSmallSide: at or below this min-side edge count FK-B resolves the
	// instance directly from its small-side base.
	fkSmallSide = 2
	// parallelProduct: |G|·|H| at or above which the tree is expected deep
	// enough to amortize goroutine spawns.
	parallelProduct = 2048
	// parallelProductMulti replaces parallelProduct when more than one
	// worker is actually available: the work-stealing pool's fixed overhead
	// is a handful of channel makes and worker wakeups (not a goroutine per
	// subtree), so mid-size trees already profit from extra CPUs.
	parallelProductMulti = 512
	// lowDegeneracy: degeneracy at or below which the instance counts as
	// structurally easy (paper §6) and stays on the serial walker.
	lowDegeneracy = 2
)

// Features are the per-instance measurements the portfolio dispatches on.
// Acyclic and Degeneracy are computed only when the cheap counts do not
// already decide the dispatch (Structural reports whether they were).
type Features struct {
	// Vertices is |V|; GEdges and HEdges are |G| and |H|.
	Vertices, GEdges, HEdges int
	// MinSide is min(|G|,|H|); Product is |G|·|H|.
	MinSide, Product int
	// Structural reports that Acyclic and Degeneracy below are populated.
	Structural bool
	// Acyclic is α-acyclicity of g (GYO reduction).
	Acyclic bool
	// Degeneracy is g's min-degree-elimination degeneracy.
	Degeneracy int
}

// ExtractFeatures computes the full feature tuple, including the structural
// fields, for observability and tests; Select itself skips the structural
// pass when the edge counts already decide the dispatch.
func ExtractFeatures(g, h *hypergraph.Hypergraph) Features {
	f := countFeatures(g, h)
	f.Structural = true
	f.Acyclic = g.IsAcyclic()
	f.Degeneracy = g.Degeneracy()
	return f
}

func countFeatures(g, h *hypergraph.Hypergraph) Features {
	return Features{
		Vertices: g.N(),
		GEdges:   g.M(),
		HEdges:   h.M(),
		MinSide:  min(g.M(), h.M()),
		Product:  g.M() * h.M(),
	}
}

// PortfolioConfig parameterizes a Portfolio; the zero value is the default
// non-racing portfolio with GOMAXPROCS-wide parallel fallback.
type PortfolioConfig struct {
	// Workers bounds the parallel engine's goroutines (0 = GOMAXPROCS).
	Workers int
	// Race runs the selected engine against a contrasting one and takes the
	// first verdict, cancelling the loser.
	Race bool
}

// Portfolio is the feature-dispatching engine. It is stateless and safe for
// concurrent use; create with NewPortfolio.
type Portfolio struct {
	cfg      PortfolioConfig
	serial   coreSerial
	parallel coreParallel
	fka, fkb fk
}

// NewPortfolio returns a portfolio over the core and FK engines.
func NewPortfolio(cfg PortfolioConfig) *Portfolio {
	return &Portfolio{cfg: cfg, parallel: coreParallel{workers: cfg.Workers}, fka: fk{}, fkb: fk{b: true}}
}

// Name returns "portfolio".
func (p *Portfolio) Name() string { return "portfolio" }

// Caps reports the portfolio's own contract: it may parallelize and a
// Session can pin its scratch, but a fail path is not guaranteed (the FK
// engines do not produce one), and TrSubset runs on the serial walker.
func (p *Portfolio) Caps() Caps {
	return Caps{Parallel: true, TrSubset: true, Reusable: true}
}

// Select returns the engine the portfolio would dispatch (g, h) to, plus the
// features that determined the choice — exposed so tests and /statsz
// consumers can observe the policy.
func (p *Portfolio) Select(g, h *hypergraph.Hypergraph) (Engine, Features) {
	f := countFeatures(g, h)
	if f.MinSide <= fkSmallSide {
		return p.fkb, f
	}
	// A single-slot pool degenerates to serial search with scheduler
	// overhead and without the session-pinnable (memoized) scratch: never
	// pick it. With real extra workers the threshold drops — see
	// parallelProductMulti.
	single := p.cfg.Workers == 1 || (p.cfg.Workers <= 0 && runtime.GOMAXPROCS(0) == 1)
	threshold := parallelProductMulti
	if single {
		threshold = parallelProduct
	}
	if f.Product < threshold {
		return p.serial, f
	}
	if single {
		return p.serial, f
	}
	f.Structural = true
	f.Acyclic = g.IsAcyclic()
	f.Degeneracy = g.Degeneracy()
	if f.Acyclic || f.Degeneracy <= lowDegeneracy {
		return p.serial, f
	}
	return p.parallel, f
}

// rival returns the contrasting engine raced against the selection: the
// FK-A baseline against core picks, the serial decomposition against FK
// picks — maximally different search strategies, per the racing rationale.
func (p *Portfolio) rival(sel Engine) Engine {
	switch sel.(type) {
	case fk:
		return p.serial
	default:
		return p.fka
	}
}

// Decide dispatches to the selected engine, or races it against its rival
// when racing is configured.
func (p *Portfolio) Decide(ctx context.Context, g, h *hypergraph.Hypergraph) (*core.Result, error) {
	sel, _ := p.Select(g, h)
	if p.cfg.Race {
		return race(ctx, sel, p.rival(sel), g, h)
	}
	return sel.Decide(ctx, g, h)
}

// TrSubset runs the raw tree stage on the serial walker (the FK engines
// cannot answer the precondition-free question, and the choice does not
// affect the verdict).
func (p *Portfolio) TrSubset(ctx context.Context, g, h *hypergraph.Hypergraph) (*core.Result, error) {
	return core.TrSubsetContext(ctx, g, h)
}

func (p *Portfolio) decideWith(ctx context.Context, d *core.Decider, g, h *hypergraph.Hypergraph) (*core.Result, error) {
	if p.cfg.Race {
		// Racing runs two engines concurrently; the single-threaded pinned
		// decider cannot serve both, so racing portfolios decide statelessly.
		return p.Decide(ctx, g, h)
	}
	sel, _ := p.Select(g, h)
	if db, ok := sel.(deciderBacked); ok {
		return db.decideWith(ctx, d, g, h)
	}
	return sel.Decide(ctx, g, h)
}

func (p *Portfolio) trSubsetWith(ctx context.Context, d *core.Decider, g, h *hypergraph.Hypergraph) (*core.Result, error) {
	return d.TrSubsetContext(ctx, g, h)
}

// race runs a and b under a shared cancellable context and returns the first
// verdict, cancelling the loser (which drains within one node boundary). It
// waits for both goroutines before returning, so no work outlives the call.
func race(ctx context.Context, a, b Engine, g, h *hypergraph.Hypergraph) (*core.Result, error) {
	rctx, cancel := context.WithCancel(ctx)
	defer cancel()
	type outcome struct {
		res *core.Result
		err error
	}
	ch := make(chan outcome, 2)
	for _, e := range []Engine{a, b} {
		go func(e Engine) {
			res, err := e.Decide(rctx, g, h)
			ch <- outcome{res, err}
		}(e)
	}
	var winner *core.Result
	var firstErr error
	for i := 0; i < 2; i++ {
		o := <-ch
		switch {
		case o.err == nil && winner == nil:
			winner = o.res
			cancel() // stop the loser; its (cancelled) error is discarded
		case o.err != nil && firstErr == nil:
			firstErr = o.err
		}
	}
	if winner != nil {
		return winner, nil
	}
	return nil, firstErr
}
