package engine_test

// Cross-engine conformance: every engine must report the same verdict (and
// the same Reason for precondition failures) on every instance, and every
// non-dual new-transversal verdict must carry a valid witness — a
// transversal of g containing no edge of h, whose complement witnesses the
// opposite orientation. The harness sweeps the named instance families plus
// a seeded randomized mix of dual, non-dual, self-dual and degenerate
// (empty/constant) instances.

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"dualspace/internal/bitset"
	"dualspace/internal/core"
	"dualspace/internal/engine"
	"dualspace/internal/gen"
	"dualspace/internal/hypergraph"
	"dualspace/internal/transversal"
)

// allEngines resolves every registry engine, the portfolio included.
func allEngines(t *testing.T) []engine.Engine {
	t.Helper()
	var out []engine.Engine
	for _, name := range engine.Names() {
		e, err := engine.ByName(name)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		out = append(out, e)
	}
	return out
}

// checkInstance decides (g, h) with every engine and asserts verdict
// agreement and witness validity against the expected duality.
func checkInstance(t *testing.T, name string, g, h *hypergraph.Hypergraph, wantDual bool) {
	t.Helper()
	ctx := context.Background()
	var wantReason core.Reason
	haveReason := false
	for _, e := range allEngines(t) {
		res, err := e.Decide(ctx, g, h)
		if err != nil {
			t.Fatalf("%s: engine %s: %v", name, e.Name(), err)
		}
		if res.Dual != wantDual {
			t.Errorf("%s: engine %s: dual=%v, want %v", name, e.Name(), res.Dual, wantDual)
			continue
		}
		if res.Dual {
			continue
		}
		// Precondition reasons must agree verbatim across engines (they all
		// run the same precheck); tree-stage witnesses may differ per engine
		// but must each be valid.
		if !haveReason {
			wantReason, haveReason = res.Reason, true
		} else if res.Reason != wantReason {
			t.Errorf("%s: engine %s: reason %v, others %v", name, e.Name(), res.Reason, wantReason)
		}
		if res.Reason == core.ReasonNewTransversal {
			if !g.IsNewTransversal(res.Witness, h) {
				t.Errorf("%s: engine %s: witness %v is not a new transversal of g w.r.t. h",
					name, e.Name(), res.Witness)
			}
			if !h.IsNewTransversal(res.CoWitness, g) {
				t.Errorf("%s: engine %s: co-witness %v is not a new transversal of h w.r.t. g",
					name, e.Name(), res.CoWitness)
			}
		}
	}
}

func TestConformanceFamilies(t *testing.T) {
	for _, pair := range gen.Families(7) {
		checkInstance(t, pair.Name, pair.G, pair.H, pair.Dual)
	}
}

func TestConformanceDegenerate(t *testing.T) {
	n := 4
	bottom := hypergraph.New(n) // ⊥: no edges
	top := hypergraph.New(n)    // ⊤: the single empty edge
	top.AddEdge(bitset.New(n))
	single := hypergraph.MustFromEdges(n, [][]int{{0, 1, 2, 3}})
	singletons := hypergraph.MustFromEdges(n, [][]int{{0}, {1}, {2}, {3}})

	checkInstance(t, "bottom/top", bottom, top, true)
	checkInstance(t, "top/bottom", top, bottom, true)
	checkInstance(t, "bottom/bottom", bottom, bottom, false)
	checkInstance(t, "top/top", top, top, false)
	checkInstance(t, "bottom/nonconstant", bottom, single, false)
	checkInstance(t, "full-edge/singletons", single, singletons, true)
	checkInstance(t, "singletons/full-edge", singletons, single, true)
}

func TestConformanceRandomDifferential(t *testing.T) {
	r := rand.New(rand.NewSource(20260726))
	rounds := 24
	if testing.Short() {
		rounds = 8
	}
	for i := 0; i < rounds; i++ {
		n := 4 + r.Intn(5)
		m := 3 + r.Intn(4)
		g := gen.Random(r, n, m, 0.3+0.2*r.Float64())
		if g.M() == 0 || g.HasEmptyEdge() {
			continue
		}
		h := transversal.AsHypergraph(g)

		checkInstance(t, fmt.Sprintf("rand-%d-dual", i), g, h, true)
		if h.M() >= 2 {
			checkInstance(t, fmt.Sprintf("rand-%d-dropped", i),
				g, gen.DropEdge(h, r.Intn(h.M())), false)
		}
		// Self-dualized pair: dual iff the base pair is.
		sd := gen.SelfDualize(g, h)
		checkInstance(t, fmt.Sprintf("rand-%d-selfdual", i), sd, sd, true)
		if h.M() >= 2 {
			sdBad := gen.SelfDualize(g, gen.DropEdge(h, r.Intn(h.M())))
			checkInstance(t, fmt.Sprintf("rand-%d-selfdual-broken", i), sdBad, sdBad, false)
		}
	}
}

// TestConformancePreconditionReasons drives instances that fail each
// precondition and asserts every engine classifies them identically (they
// share the precheck, but the agreement is part of the layer's contract).
func TestConformancePreconditionReasons(t *testing.T) {
	ctx := context.Background()
	g := gen.Matching(2)
	cases := []struct {
		name   string
		h      *hypergraph.Hypergraph
		reason core.Reason
	}{
		{"not-cross-intersecting", hypergraph.MustFromEdges(4, [][]int{{0, 1}}), core.ReasonNotCrossIntersecting},
		{"h-edge-not-minimal", hypergraph.MustFromEdges(4, [][]int{{0, 2}, {0, 1, 3}}), core.ReasonHEdgeNotMinimal},
		{"constant-mismatch", hypergraph.New(4), core.ReasonConstantMismatch},
	}
	for _, tc := range cases {
		for _, e := range allEngines(t) {
			res, err := e.Decide(ctx, g, tc.h)
			if err != nil {
				t.Fatalf("%s: engine %s: %v", tc.name, e.Name(), err)
			}
			if res.Dual || res.Reason != tc.reason {
				t.Errorf("%s: engine %s: (dual=%v, reason=%v), want reason %v",
					tc.name, e.Name(), res.Dual, res.Reason, tc.reason)
			}
		}
	}
}
