package engine

import (
	"context"
	"sync"
	"testing"
	"time"

	"dualspace/internal/hypergraph"
)

func TestSessionPoolAcquireRelease(t *testing.T) {
	p := NewSessionPool(nil, 2, 0)
	if p.Size() != 2 {
		t.Fatalf("Size = %d", p.Size())
	}
	ctx := context.Background()
	a, err := p.Acquire(ctx)
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.Acquire(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Fatal("pool handed out the same session twice")
	}
	// Pool drained: Acquire must respect cancellation instead of hanging.
	shortCtx, cancel := context.WithTimeout(ctx, 20*time.Millisecond)
	defer cancel()
	if _, err := p.Acquire(shortCtx); err == nil {
		t.Fatal("Acquire on a drained pool returned without error")
	}
	p.Release(a)
	c, err := p.Acquire(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if c != a {
		t.Fatal("released session not recycled")
	}
	p.Release(b)
	p.Release(c)
}

// TestSessionPoolReplacesPoisoned: releasing a poisoned session must not
// recycle it — the pool mints a fresh replacement into the slot (capacity
// self-heals after a contained panic) and counts the swap.
func TestSessionPoolReplacesPoisoned(t *testing.T) {
	p := NewSessionPool(nil, 2, 0)
	ctx := context.Background()
	a, err := p.Acquire(ctx)
	if err != nil {
		t.Fatal(err)
	}
	a.MarkPoisoned()
	p.Release(a)
	if got := p.Replaced(); got != 1 {
		t.Fatalf("Replaced = %d, want 1", got)
	}
	if p.Free() != 2 {
		t.Fatalf("Free = %d after replacement, want full capacity 2", p.Free())
	}
	// Both remaining slots must hold healthy sessions, neither of them a.
	b, _ := p.Acquire(ctx)
	c, _ := p.Acquire(ctx)
	for _, sess := range []*Session{b, c} {
		if sess == a {
			t.Fatal("poisoned session recycled")
		}
		if sess.Poisoned() {
			t.Fatal("pool handed out a poisoned session")
		}
	}
	// The replacement must decide correctly, and MemoStats must iterate the
	// post-swap roster without tripping the race detector.
	g := hypergraph.MustFromEdges(4, [][]int{{0, 1}, {2, 3}})
	h := hypergraph.MustFromEdges(4, [][]int{{0, 2}, {0, 3}, {1, 2}, {1, 3}})
	for _, sess := range []*Session{b, c} {
		res, err := sess.Decide(ctx, g, h)
		if err != nil || !res.Dual {
			t.Fatalf("post-replacement decision: res=%v err=%v", res, err)
		}
	}
	_ = p.MemoStats()
	p.Release(b)
	p.Release(c)
	if got := p.Replaced(); got != 1 {
		t.Fatalf("Replaced after healthy releases = %d, want still 1", got)
	}
}

func TestSessionPoolConcurrentDecisions(t *testing.T) {
	p := NewSessionPool(nil, 3, 0)
	g := hypergraph.MustFromEdges(4, [][]int{{0, 1}, {2, 3}})
	h := hypergraph.MustFromEdges(4, [][]int{{0, 2}, {0, 3}, {1, 2}, {1, 3}})
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sess, err := p.Acquire(context.Background())
			if err != nil {
				errs <- err
				return
			}
			defer p.Release(sess)
			res, err := sess.Decide(context.Background(), g, h)
			if err != nil {
				errs <- err
				return
			}
			if !res.Dual {
				errs <- context.DeadlineExceeded // any sentinel: wrong verdict
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("pooled decision failed: %v", err)
	}
	// MemoStats must be the exact sum of the per-session counters (tiny
	// instances may legitimately record zero lookups).
	agg := p.MemoStats()
	var want int64
	for _, sess := range p.all {
		want += sess.MemoStats().Hits + sess.MemoStats().Misses
	}
	if agg.Hits+agg.Misses != want {
		t.Errorf("MemoStats aggregate %d lookups, sessions sum %d", agg.Hits+agg.Misses, want)
	}
}
