package engine

// SessionPool is a fixed-size, concurrency-safe pool of Sessions. Sessions
// are not safe for concurrent use, so long-lived concurrent holders — the
// HTTP service's worker slots, the batch scheduler's drain workers — check
// one out with Acquire (blocking until a slot frees or ctx fires), run any
// number of decisions on it, and hand it back with Release. Each session
// keeps its pinned scratch and its cross-node subinstance memo for the
// pool's lifetime, so decisions served through the pool reuse both across
// holders.

import (
	"context"
	"runtime"

	"dualspace/internal/core"
)

// SessionPool holds size Sessions; see the package comment of Session for
// what one session reuses across the decisions it serves.
type SessionPool struct {
	ch  chan *Session
	all []*Session
}

// NewSessionPool builds a pool of size sessions driving eng (nil = the
// default portfolio), each with the given memo bound (the NewSessionMemo
// convention: 0 = default size, negative = disabled). size <= 0 means
// GOMAXPROCS.
func NewSessionPool(eng Engine, size, memoEntries int) *SessionPool {
	if size <= 0 {
		size = runtime.GOMAXPROCS(0)
	}
	p := &SessionPool{ch: make(chan *Session, size)}
	for i := 0; i < size; i++ {
		s := NewSessionMemo(eng, memoEntries)
		p.all = append(p.all, s)
		p.ch <- s
	}
	return p
}

// Acquire checks a session out, blocking until one is free or ctx is done.
// The caller owns the session exclusively until Release.
func (p *SessionPool) Acquire(ctx context.Context) (*Session, error) {
	select {
	case s := <-p.ch:
		return s, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Release returns a session obtained from Acquire to the pool.
func (p *SessionPool) Release(s *Session) { p.ch <- s }

// Size reports the pool's fixed capacity.
func (p *SessionPool) Size() int { return len(p.all) }

// MemoStats aggregates the subinstance-memo counters over every session in
// the pool, checked out or not (the per-session counters are atomic).
func (p *SessionPool) MemoStats() core.MemoStats {
	var agg core.MemoStats
	for _, s := range p.all {
		ms := s.MemoStats()
		agg.Hits += ms.Hits
		agg.Misses += ms.Misses
		agg.Inserts += ms.Inserts
		agg.Entries += ms.Entries
		agg.Evictions += ms.Evictions
	}
	return agg
}
