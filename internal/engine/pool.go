package engine

// SessionPool is a fixed-size, concurrency-safe pool of Sessions. Sessions
// are not safe for concurrent use, so long-lived concurrent holders — the
// HTTP service's worker slots, the batch scheduler's drain workers — check
// one out with Acquire (blocking until a slot frees or ctx fires), run any
// number of decisions on it, and hand it back with Release. Each session
// keeps its pinned scratch and its cross-node subinstance memo for the
// pool's lifetime, so decisions served through the pool reuse both across
// holders.
//
// The pool also self-heals: a holder whose recover() boundary caught a
// panic marks the session poisoned (Session.MarkPoisoned) before releasing
// it, and Release swaps a poisoned session for a freshly minted one so the
// pool's capacity never degrades. The swap loses that session's memo — the
// price of not trusting scratch a panic tore through.

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"

	"dualspace/internal/core"
)

// SessionPool holds size Sessions; see the package comment of Session for
// what one session reuses across the decisions it serves.
type SessionPool struct {
	ch chan *Session
	// eng and memoEntries are the construction parameters, kept so Release
	// can mint a replacement for a poisoned session.
	eng         Engine
	memoEntries int

	mu       sync.Mutex // guards all (Release may swap entries)
	all      []*Session
	replaced atomic.Int64
}

// NewSessionPool builds a pool of size sessions driving eng (nil = the
// default portfolio), each with the given memo bound (the NewSessionMemo
// convention: 0 = default size, negative = disabled). size <= 0 means
// GOMAXPROCS.
func NewSessionPool(eng Engine, size, memoEntries int) *SessionPool {
	if size <= 0 {
		size = runtime.GOMAXPROCS(0)
	}
	p := &SessionPool{
		ch:          make(chan *Session, size),
		eng:         eng,
		memoEntries: memoEntries,
	}
	for i := 0; i < size; i++ {
		s := NewSessionMemo(eng, memoEntries)
		p.all = append(p.all, s)
		p.ch <- s
	}
	return p
}

// Acquire checks a session out, blocking until one is free or ctx is done.
// The caller owns the session exclusively until Release.
func (p *SessionPool) Acquire(ctx context.Context) (*Session, error) {
	select {
	case s := <-p.ch:
		return s, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// TryAcquire checks a session out without blocking, reporting false when
// none is free. The admission-control fast path uses it to serve without
// ever touching the wait queue.
func (p *SessionPool) TryAcquire() (*Session, bool) {
	select {
	case s := <-p.ch:
		return s, true
	default:
		return nil, false
	}
}

// Chan exposes the free-session channel for callers that need to select on
// availability together with other events (the service's bounded wait queue
// races a free slot against its queue-wait timer and the drain signal).
// A session received from the channel is owned exactly as if Acquire
// returned it.
func (p *SessionPool) Chan() <-chan *Session { return p.ch }

// Release returns a session obtained from Acquire to the pool. A session
// marked poisoned is discarded and a fresh one minted into its slot, so the
// pool's capacity survives contained panics.
func (p *SessionPool) Release(s *Session) {
	if s.Poisoned() {
		s = p.replace(s)
	}
	p.ch <- s
}

// replace mints a fresh session into the poisoned one's slot in all.
func (p *SessionPool) replace(old *Session) *Session {
	fresh := NewSessionMemo(p.eng, p.memoEntries)
	p.mu.Lock()
	for i, s := range p.all {
		if s == old {
			p.all[i] = fresh
			break
		}
	}
	p.mu.Unlock()
	p.replaced.Add(1)
	return fresh
}

// Replaced reports how many poisoned sessions Release has swapped out.
func (p *SessionPool) Replaced() int64 { return p.replaced.Load() }

// Size reports the pool's fixed capacity.
func (p *SessionPool) Size() int { return cap(p.ch) }

// Free reports how many sessions are currently checked in — a point-in-time
// gauge for /metricsz, racy by nature.
func (p *SessionPool) Free() int { return len(p.ch) }

// MemoStats aggregates the subinstance-memo counters over every session in
// the pool, checked out or not (the per-session counters are atomic).
func (p *SessionPool) MemoStats() core.MemoStats {
	var agg core.MemoStats
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, s := range p.all {
		ms := s.MemoStats()
		agg.Hits += ms.Hits
		agg.Misses += ms.Misses
		agg.Inserts += ms.Inserts
		agg.Entries += ms.Entries
		agg.Evictions += ms.Evictions
	}
	return agg
}
