package engine

import "fmt"

// PanicError wraps a panic recovered at a serving boundary — the service's
// guarded decide step, the batch scheduler's drain step, or the HTTP
// middleware — so panic containment has one error type every layer can
// classify (the service maps it to a 500 with the "panic" reason). The
// session the panic escaped from must be considered poisoned: its pinned
// scratch may be mid-mutation, so the boundary marks it
// (Session.MarkPoisoned) and the pool replaces it on Release.
type PanicError struct {
	// Val is the recovered panic value.
	Val any
	// Stack is the panicking goroutine's stack at recovery time
	// (runtime/debug.Stack), logged by the containment site.
	Stack []byte
}

func (e *PanicError) Error() string { return fmt.Sprintf("internal panic: %v", e.Val) }
