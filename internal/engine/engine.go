// Package engine is the pluggable decision-engine layer: one interface over
// the repository's five duality decision procedures — the paper's
// Boros–Makino decomposition (serial and parallel, internal/core), the
// space-metered replay walker (internal/logspace), and the Fredman–Khachiyan
// algorithms A and B (internal/fkdual) — plus a Portfolio that dispatches on
// cheap instance features (with an optional racing mode) and a Session that
// pins per-engine scratch so a long-lived holder's repeated decisions are
// allocation-free across calls.
//
// Every engine answers the same question with the same Result vocabulary:
// Decide(ctx, g, h) reports whether h = tr(g), classifying negative verdicts
// with core's Reason taxonomy. The adapters for procedures that lack core's
// precondition stage (FK, logspace) run core.Precheck first, so constants,
// cross-intersection failures and minimality violations are reported
// identically by every engine; only the tree/recursion stage differs. For
// the FK algorithms the recursion witness x (an assignment with
// f_g(x) = f_h(V∖x)) is converted to the paper's witness form: once the
// preconditions hold only both-false witnesses are possible, and then V∖x is
// a new transversal of g with respect to h.
//
// Call sites choose an engine by value (ByName, NewPortfolio, NewCoreParallel)
// or take the Default portfolio; no package outside this one constructs a
// decision procedure directly — the façade, the HTTP service, the CLIs and
// the application layers (transversal oracles, keys, itemsets, coteries) all
// route through here. DESIGN.md §6 documents the layer.
package engine

import (
	"context"
	"fmt"

	"dualspace/internal/core"
	"dualspace/internal/fkdual"
	"dualspace/internal/hypergraph"
	"dualspace/internal/logspace"
)

// Caps describes what an engine can do beyond the bare verdict, so callers
// can dispatch on ability instead of name.
type Caps struct {
	// Parallel: the engine searches with multiple goroutines.
	Parallel bool
	// FailPath: non-dual verdicts carry a decomposition-tree fail-path
	// descriptor (the O(log²n)-bit certificate of Theorem 5.1).
	FailPath bool
	// TrSubset: the engine also decides the raw tree question tr(g) ⊆ h
	// without the minimality preconditions (it implements TrSubsetter).
	TrSubset bool
	// Reusable: a Session can pin this engine's scratch for allocation-free
	// repeated decisions.
	Reusable bool
}

// Engine is a duality decision procedure. Implementations are stateless and
// safe for concurrent use; per-holder reusable state lives in Session.
type Engine interface {
	// Name returns the engine's registry name (see Names).
	Name() string
	// Caps reports the engine's capabilities.
	Caps() Caps
	// Decide reports whether h = tr(g), under core.DecideContext's input and
	// cancellation contract.
	Decide(ctx context.Context, g, h *hypergraph.Hypergraph) (*core.Result, error)
}

// TrSubsetter is the optional raw tree-stage capability: deciding
// tr(g) ⊆ h for a simple, cross-intersecting, non-constant pair without
// requiring minimality (the mid-iteration form the incremental applications
// of §1 of the paper need). Engines advertise it via Caps.TrSubset.
type TrSubsetter interface {
	Engine
	TrSubset(ctx context.Context, g, h *hypergraph.Hypergraph) (*core.Result, error)
}

// deciderBacked is implemented by engines whose decisions can run on a
// Session's pinned core.Decider instead of fresh per-call scratch.
type deciderBacked interface {
	decideWith(ctx context.Context, d *core.Decider, g, h *hypergraph.Hypergraph) (*core.Result, error)
	trSubsetWith(ctx context.Context, d *core.Decider, g, h *hypergraph.Hypergraph) (*core.Result, error)
}

// TrSubset decides tr(g) ⊆ h with eng when it has the capability, falling
// back to the reference serial tree stage otherwise (every engine's verdict
// would agree; only the work differs, so the fallback is safe).
func TrSubset(ctx context.Context, eng Engine, g, h *hypergraph.Hypergraph) (*core.Result, error) {
	if ts, ok := eng.(TrSubsetter); ok {
		return ts.TrSubset(ctx, g, h)
	}
	return core.TrSubsetContext(ctx, g, h)
}

// coreSerial adapts the paper's serial decomposition (core.DecideContext).
type coreSerial struct{}

func (coreSerial) Name() string { return "core" }
func (coreSerial) Caps() Caps   { return Caps{FailPath: true, TrSubset: true, Reusable: true} }
func (coreSerial) Decide(ctx context.Context, g, h *hypergraph.Hypergraph) (*core.Result, error) {
	return core.DecideContext(ctx, g, h)
}
func (coreSerial) TrSubset(ctx context.Context, g, h *hypergraph.Hypergraph) (*core.Result, error) {
	return core.TrSubsetContext(ctx, g, h)
}
func (coreSerial) decideWith(ctx context.Context, d *core.Decider, g, h *hypergraph.Hypergraph) (*core.Result, error) {
	return d.DecideContext(ctx, g, h)
}
func (coreSerial) trSubsetWith(ctx context.Context, d *core.Decider, g, h *hypergraph.Hypergraph) (*core.Result, error) {
	return d.TrSubsetContext(ctx, g, h)
}

// coreParallel adapts the bounded-goroutine tree search.
type coreParallel struct{ workers int }

// NewCoreParallel returns the parallel decomposition engine with the given
// goroutine bound (0 = GOMAXPROCS).
func NewCoreParallel(workers int) Engine { return coreParallel{workers: workers} }

func (coreParallel) Name() string { return "core-parallel" }
func (coreParallel) Caps() Caps   { return Caps{Parallel: true, FailPath: true} }
func (e coreParallel) Decide(ctx context.Context, g, h *hypergraph.Hypergraph) (*core.Result, error) {
	return core.DecideParallelContext(ctx, g, h, e.workers)
}

// decideWith cannot use the pinned scratch (the work-stealing pool owns its
// worker states), but it inherits the session decider's recorder so parallel
// decisions report stage timings — including walk_steals — like serial ones.
func (e coreParallel) decideWith(ctx context.Context, d *core.Decider, g, h *hypergraph.Hypergraph) (*core.Result, error) {
	return core.DecideParallelOpts(ctx, g, h, core.ParallelOptions{Workers: e.workers, Rec: d.Recorder()})
}

// trSubsetWith answers the raw tree stage on the pinned serial walker (the
// choice does not affect the verdict).
func (e coreParallel) trSubsetWith(ctx context.Context, d *core.Decider, g, h *hypergraph.Hypergraph) (*core.Result, error) {
	return d.TrSubsetContext(ctx, g, h)
}

// fk adapts the Fredman–Khachiyan algorithms: core.Precheck for the
// precondition reasons, then the FK recursion for the tree-equivalent stage.
type fk struct{ b bool }

func (e fk) Name() string {
	if e.b {
		return "fk-b"
	}
	return "fk-a"
}
func (fk) Caps() Caps { return Caps{} }

func (e fk) Decide(ctx context.Context, g, h *hypergraph.Hypergraph) (*core.Result, error) {
	res, done, err := core.Precheck(g, h)
	if err != nil || done {
		return res, err
	}
	decide := fkdual.DecideAContext
	if e.b {
		decide = fkdual.DecideBContext
	}
	fres, err := decide(ctx, g, h)
	if err != nil {
		return nil, err
	}
	out := &core.Result{Dual: fres.Dual, GEdge: -1, HEdge: -1, RedundantVertex: -1}
	// Map the recursion counters onto the tree-stage statistics so callers
	// see comparable work measures across engines.
	out.Stats = core.Stats{Nodes: fres.Stats.Calls, MaxDepth: fres.Stats.MaxDepth}
	if !fres.Dual {
		// Preconditions hold, so the FK witness x must be both-false
		// (a both-true witness would exhibit a disjoint edge pair, which
		// cross-intersection excludes): no g-edge inside x, no h-edge inside
		// V∖x. Then V∖x is a transversal of g containing no edge of h — the
		// paper's new-transversal witness — and x is its co-witness.
		out.Reason = core.ReasonNewTransversal
		out.Witness = fres.Witness.Complement()
		out.CoWitness = fres.Witness.Clone()
	}
	return out, nil
}

// logspaceReplay adapts the path-descriptor walker in its fast (replay)
// regime: core.Precheck, then logspace.FindFailPath over the decomposition
// tree, honoring the same |H| ≤ |G| orientation convention as core.Decide.
type logspaceReplay struct{}

func (logspaceReplay) Name() string { return "logspace" }
func (logspaceReplay) Caps() Caps   { return Caps{FailPath: true, TrSubset: true} }

func (e logspaceReplay) Decide(ctx context.Context, g, h *hypergraph.Hypergraph) (*core.Result, error) {
	res, done, err := core.Precheck(g, h)
	if err != nil || done {
		return res, err
	}
	a, b, swapped := g, h, false
	if h.M() > g.M() {
		a, b, swapped = h, g, true
	}
	out, err := e.TrSubset(ctx, a, b)
	if err != nil {
		return nil, err
	}
	out.Swapped = swapped
	if !out.Dual && swapped {
		out.Witness, out.CoWitness = out.CoWitness, out.Witness
	}
	return out, nil
}

func (logspaceReplay) TrSubset(ctx context.Context, g, h *hypergraph.Hypergraph) (*core.Result, error) {
	out := &core.Result{Dual: true, GEdge: -1, HEdge: -1, RedundantVertex: -1}
	// Walk the tree through the path-descriptor enumerator (Theorem 4.1's
	// decompose), stopping at the first fail leaf — the same DFS-first
	// search as logspace.FindFailPath, but with the per-node visibility the
	// Stats contract wants (MaxChildren is not observable per node here and
	// stays 0). Attr.Label and Attr.T alias walker state, so both are
	// copied out.
	err := logspace.Decompose(g, h, logspace.Options{Mode: logspace.ModeReplay, Ctx: ctx},
		func(a logspace.Attr) bool {
			out.Stats.Nodes++
			if d := len(a.Label); d > out.Stats.MaxDepth {
				out.Stats.MaxDepth = d
			}
			if a.Mark == core.MarkNil {
				return true
			}
			out.Stats.Leaves++
			if a.Mark != core.MarkFail {
				return true
			}
			out.Dual = false
			out.Reason = core.ReasonNewTransversal
			out.Witness = a.T.Clone()
			out.CoWitness = out.Witness.Complement()
			out.FailPath = append([]int(nil), a.Label...)
			return false // fail leaf found: stop the walk
		}, nil)
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Names lists the registry names accepted by ByName, default first.
func Names() []string {
	return []string{"portfolio", "core", "core-parallel", "fk-a", "fk-b", "logspace"}
}

// ByName resolves a registry name to an engine; the empty string resolves to
// the default portfolio. Unknown names return an error listing the registry.
func ByName(name string) (Engine, error) {
	switch name {
	case "", "portfolio":
		return Default(), nil
	case "core":
		return coreSerial{}, nil
	case "core-parallel":
		return coreParallel{}, nil
	case "fk-a":
		return fk{}, nil
	case "fk-b":
		return fk{b: true}, nil
	case "logspace":
		return logspaceReplay{}, nil
	}
	return nil, fmt.Errorf("engine: unknown engine %q (have %v)", name, Names())
}

// defaultPortfolio is the shared default engine: a non-racing portfolio with
// GOMAXPROCS-wide parallel fallback. Portfolios are stateless, so one
// instance serves every caller.
var defaultPortfolio = NewPortfolio(PortfolioConfig{})

// Default returns the engine used by every legacy entry point: the standard
// feature-dispatching portfolio.
func Default() Engine { return defaultPortfolio }
