package engine_test

import (
	"context"
	"testing"

	"dualspace/internal/engine"
	"dualspace/internal/gen"
	"dualspace/internal/hypergraph"
	"dualspace/internal/obs"
	"dualspace/internal/transversal"
)

func mustEngine(t *testing.T, name string) engine.Engine {
	t.Helper()
	e, err := engine.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestRegistry(t *testing.T) {
	for _, name := range engine.Names() {
		e := mustEngine(t, name)
		if e.Name() != name {
			t.Errorf("ByName(%q).Name() = %q", name, e.Name())
		}
	}
	if def, err := engine.ByName(""); err != nil || def.Name() != "portfolio" {
		t.Errorf("empty name resolved to (%v, %v), want the portfolio", def, err)
	}
	if _, err := engine.ByName("quantum"); err == nil {
		t.Error("unknown engine name did not error")
	}
	caps := mustEngine(t, "core").Caps()
	if !caps.TrSubset || !caps.Reusable || caps.Parallel {
		t.Errorf("core caps = %+v", caps)
	}
	if !mustEngine(t, "core-parallel").Caps().Parallel {
		t.Error("core-parallel not flagged Parallel")
	}
}

// star returns the α-acyclic star {{0,i}} with m rays over m+1 vertices.
func star(m int) *hypergraph.Hypergraph {
	h := hypergraph.New(m + 1)
	for i := 1; i <= m; i++ {
		h.AddEdgeElems(0, i)
	}
	return h
}

func TestPortfolioSelect(t *testing.T) {
	// Pin the worker bound so the selection policy under test does not
	// depend on the host's GOMAXPROCS (a single-slot pool never goes
	// parallel; see the dedicated case below).
	p := engine.NewPortfolio(engine.PortfolioConfig{Workers: 4})

	// A two-edge side dispatches to FK-B regardless of the other side.
	if sel, f := p.Select(gen.Matching(2), gen.MatchingDual(2)); sel.Name() != "fk-b" || f.MinSide != 2 {
		t.Errorf("small side: selected %s (features %+v)", sel.Name(), f)
	}

	// Mid-size products stay on the serial walker.
	if sel, f := p.Select(gen.Matching(5), gen.MatchingDual(5)); sel.Name() != "core" {
		t.Errorf("mid size: selected %s (features %+v)", sel.Name(), f)
	}

	// Large non-acyclic products go parallel: the 9-majority (C(9,5) = 126
	// edges, degeneracy > 2) against itself crosses the product threshold.
	big := gen.Majority(9)
	if sel, f := p.Select(big, big); sel.Name() != "core-parallel" || !f.Structural {
		t.Errorf("large size: selected %s (features %+v)", sel.Name(), f)
	}

	// Large but α-acyclic first input stays serial (paper §6's easy class).
	// Selection only reads edge counts and structure, so any fat second side
	// works.
	if sel, f := p.Select(star(60), star(60)); sel.Name() != "core" || !f.Acyclic {
		t.Errorf("large acyclic: selected %s (features %+v)", sel.Name(), f)
	}

	// A single-slot pool degenerates to serial search with spawn overhead:
	// even the large non-acyclic instance stays on the (memoizable) serial
	// walker.
	p1 := engine.NewPortfolio(engine.PortfolioConfig{Workers: 1})
	if sel, _ := p1.Select(big, big); sel.Name() != "core" {
		t.Errorf("single worker: selected %s, want core", sel.Name())
	}

	// Mid-size products between the multi-worker and single-worker
	// thresholds (majority-7: 35×35 = 1225) go parallel when extra workers
	// exist — the work-stealing pool's fixed overhead is small — but stay
	// serial on a single-slot pool.
	mid := gen.Majority(7)
	if sel, f := p.Select(mid, mid); sel.Name() != "core-parallel" {
		t.Errorf("mid size, 4 workers: selected %s (features %+v)", sel.Name(), f)
	}
	if sel, _ := p1.Select(mid, mid); sel.Name() != "core" {
		t.Errorf("mid size, 1 worker: selected %s, want core", sel.Name())
	}
}

func TestSessionRecorderReachesParallel(t *testing.T) {
	// A session's stage recorder must flow through to the parallel engine
	// even though the work-stealing pool cannot use the pinned scratch; the
	// walk stage (and on multi-worker runs possibly walk_steals) lands in
	// the same recorder serial decisions use.
	s := engine.NewSession(engine.NewCoreParallel(4))
	rec := s.Recorder()
	m := gen.Majority(7)
	res, err := s.Decide(context.Background(), m, m)
	if err != nil || !res.Dual {
		t.Fatalf("decide: %v %v", res, err)
	}
	if rec.Get(obs.StageWalk) <= 0 {
		t.Errorf("parallel decision recorded no walk time: %v", rec.Timings())
	}
	if rec.Get(obs.StageIndexSync) <= 0 {
		t.Errorf("parallel decision recorded no index time: %v", rec.Timings())
	}
	if rec.Get(obs.StageWalkSteals) < 0 {
		t.Errorf("negative steal time: %v", rec.Timings())
	}
}

func TestPortfolioRacing(t *testing.T) {
	p := engine.NewPortfolio(engine.PortfolioConfig{Race: true})
	ctx := context.Background()
	for _, pair := range gen.Families(3) {
		res, err := p.Decide(ctx, pair.G, pair.H)
		if err != nil {
			t.Fatalf("%s: %v", pair.Name, err)
		}
		if res.Dual != pair.Dual {
			t.Errorf("%s: racing verdict %v, want %v", pair.Name, res.Dual, pair.Dual)
		}
	}
	// A cancelled context surfaces as an error, not a verdict.
	cancelled, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := p.Decide(cancelled, gen.Matching(4), gen.MatchingDual(4)); err == nil {
		t.Error("racing on a cancelled context returned a verdict")
	}
}

// TestSessionAllocFree is the acceptance guard for the session layer: after
// warm-up, repeated Decide calls through one Session allocate nothing — on
// dual verdicts and on non-dual (witness-carrying) verdicts alike, and under
// the portfolio as well as the bare core engine.
func TestSessionAllocFree(t *testing.T) {
	ctx := context.Background()
	gD, hD := gen.Matching(5), gen.MatchingDual(5)
	hN := gen.DropEdge(hD, 11)

	for _, name := range []string{"core", "portfolio"} {
		s := engine.NewSession(mustEngine(t, name))
		// Warm up both verdict paths (sizes the scratch, frames, buffers).
		for i := 0; i < 2; i++ {
			if res, err := s.Decide(ctx, gD, hD); err != nil || !res.Dual {
				t.Fatalf("%s warmup dual: %v, %v", name, res, err)
			}
			if res, err := s.Decide(ctx, gD, hN); err != nil || res.Dual {
				t.Fatalf("%s warmup non-dual: %v, %v", name, res, err)
			}
		}
		if allocs := testing.AllocsPerRun(20, func() {
			res, err := s.Decide(ctx, gD, hD)
			if err != nil || !res.Dual {
				t.Fatal("wrong dual verdict")
			}
		}); allocs != 0 {
			t.Errorf("%s session: dual Decide allocates %.1f/op, want 0", name, allocs)
		}
		if allocs := testing.AllocsPerRun(20, func() {
			res, err := s.Decide(ctx, gD, hN)
			if err != nil || res.Dual || res.Witness.IsEmpty() {
				t.Fatal("wrong non-dual verdict")
			}
		}); allocs != 0 {
			t.Errorf("%s session: non-dual Decide allocates %.1f/op, want 0", name, allocs)
		}
		// With the session's stage recorder attached — the serving
		// configuration — the steady state must stay allocation-free: the
		// recorder adds clock reads per decision, never allocations.
		rec := s.Recorder()
		if allocs := testing.AllocsPerRun(20, func() {
			rec.Reset()
			res, err := s.Decide(ctx, gD, hD)
			if err != nil || !res.Dual {
				t.Fatal("wrong dual verdict")
			}
		}); allocs != 0 {
			t.Errorf("%s session: recorded Decide allocates %.1f/op, want 0", name, allocs)
		}
	}
}

// TestSessionResultReuse pins the documented aliasing contract: the result
// is valid until the next call, and Clone detaches it.
func TestSessionResultReuse(t *testing.T) {
	ctx := context.Background()
	s := engine.NewSession(mustEngine(t, "core"))
	g, h := gen.Matching(4), gen.MatchingDual(4)
	first, err := s.Decide(ctx, g, gen.DropEdge(h, 3))
	if err != nil || first.Dual {
		t.Fatalf("first decide: %v, %v", first, err)
	}
	kept := first.Clone()
	if _, err := s.Decide(ctx, g, h); err != nil {
		t.Fatal(err)
	}
	if kept.Dual || !g.IsNewTransversal(kept.Witness, gen.DropEdge(h, 3)) {
		t.Error("cloned result corrupted by a subsequent session call")
	}
}

func TestSessionDecideWithOverride(t *testing.T) {
	ctx := context.Background()
	s := engine.NewSession(mustEngine(t, "portfolio"))
	g, h := gen.Matching(3), gen.MatchingDual(3)
	for _, name := range []string{"core", "core-parallel", "fk-a", "fk-b", "logspace"} {
		res, err := s.DecideWith(ctx, mustEngine(t, name), g, h)
		if err != nil || !res.Dual {
			t.Errorf("override %s: %v, %v", name, res, err)
		}
	}
}

func TestTransversalOracle(t *testing.T) {
	ctx := context.Background()
	for _, h := range []*hypergraph.Hypergraph{
		gen.Matching(3),
		gen.Majority(5),
		star(4),
		hypergraph.New(3),                        // tr(∅) = {∅}
		hypergraph.MustFromEdges(3, [][]int{{}}), // tr({∅}) = ∅
		hypergraph.MustFromEdges(1, [][]int{{0}}), // tr({{0}}) = {{0}}
	} {
		want := transversal.Berge(h)
		for _, oracle := range []transversal.WitnessOracle{
			engine.NewTransversalOracle(ctx, mustEngine(t, "portfolio")),
			engine.NewSession(mustEngine(t, "core")).NewTransversalOracle(ctx),
		} {
			got, err := transversal.ViaOracle(h, oracle)
			if err != nil {
				t.Fatalf("%v: %v", h, err)
			}
			if !got.Canonical().EqualAsFamily(want) {
				t.Errorf("oracle tr(%v) = %v, want %v", h, got.Canonical(), want)
			}
		}
	}
}
