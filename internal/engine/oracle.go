package engine

import (
	"context"

	"dualspace/internal/bitset"
	"dualspace/internal/hypergraph"
	"dualspace/internal/transversal"
)

// Oracle plumbing: the incremental applications (transversal.ViaOracle /
// EnumerateViaOracle, and through them the data-mining pattern of §1 of the
// paper) consume a transversal.WitnessOracle; these constructors back that
// oracle with an engine's raw tree stage, so the oracle call sites need not
// touch a decision procedure directly.

// NewTransversalOracle returns a witness oracle driven by eng: it answers
// "give me a transversal of g containing no edge of partial, or report that
// partial ⊇ tr(g)", handling the degenerate shapes (constant g, empty
// partial) that the tree stage's input contract excludes. Each oracle call
// costs one duality decision.
func NewTransversalOracle(ctx context.Context, eng Engine) transversal.WitnessOracle {
	return func(g, partial *hypergraph.Hypergraph) (bitset.Set, bool, error) {
		return newTransversal(ctx, g, partial, func(g, h *hypergraph.Hypergraph) (bool, bitset.Set, error) {
			res, err := TrSubset(ctx, eng, g, h)
			if err != nil {
				return false, bitset.Set{}, err
			}
			return res.Dual, res.Witness, nil
		})
	}
}

// NewTransversalOracle is the package-level NewTransversalOracle running on
// the session's pinned scratch. The witnesses handed to this variant's
// consumer alias the session storage exactly as long as the transversal
// enumerators need them (they minimalize into a fresh set before the next
// oracle call).
func (s *Session) NewTransversalOracle(ctx context.Context) transversal.WitnessOracle {
	return func(g, partial *hypergraph.Hypergraph) (bitset.Set, bool, error) {
		return newTransversal(ctx, g, partial, func(g, h *hypergraph.Hypergraph) (bool, bitset.Set, error) {
			res, err := s.TrSubset(ctx, g, h)
			if err != nil {
				return false, bitset.Set{}, err
			}
			return res.Dual, res.Witness, nil
		})
	}
}

// newTransversal implements the oracle semantics on a tr-subset primitive:
// ok = false means partial = tr(g) (the enumeration is complete).
func newTransversal(ctx context.Context, g, partial *hypergraph.Hypergraph, trSubset func(g, h *hypergraph.Hypergraph) (bool, bitset.Set, error)) (bitset.Set, bool, error) {
	if err := ctx.Err(); err != nil {
		return bitset.Set{}, false, err
	}
	switch {
	case g.HasEmptyEdge():
		// tr(g) = ∅: nothing to find, any partial ⊆ tr(g) is complete.
		return bitset.Set{}, false, nil
	case g.M() == 0:
		// tr(g) = {∅}: the empty set is the one missing transversal.
		if partial.M() == 0 {
			return bitset.New(g.N()), true, nil
		}
		return bitset.Set{}, false, nil
	case partial.M() == 0:
		// No candidates yet: the full vertex set is a transversal of the
		// non-constant g and trivially contains no edge of the empty family.
		return bitset.Full(g.N()), true, nil
	case partial.HasEmptyEdge():
		// ∅ ∈ partial: every set contains ∅, so no new transversal exists.
		return bitset.Set{}, false, nil
	}
	dual, wit, err := trSubset(g, partial)
	if err != nil {
		return bitset.Set{}, false, err
	}
	if dual {
		return bitset.Set{}, false, nil
	}
	return wit, true, nil
}
