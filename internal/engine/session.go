package engine

import (
	"context"

	"dualspace/internal/core"
	"dualspace/internal/hypergraph"
	"dualspace/internal/obs"
)

// Session is the per-holder reuse layer: it wraps an engine together with a
// pinned core.Decider (classification scratch, frame stack, witness and
// result storage), so that repeated decisions from one long-lived holder —
// a service worker, an incremental border/key loop, a CLI batch — are
// allocation-free across calls, not just within one. Engines that cannot
// use the pinned scratch (the parallel search pools its own worker states;
// the FK recursion allocates per call by nature) simply decide statelessly
// through the same Session.
//
// A Session is itself an Engine, so it can be handed to any engine-accepting
// call site. It is NOT safe for concurrent use, and results returned through
// it alias the pinned storage: they are valid until the Session's next call,
// so holders that retain verdicts (e.g. a cache) must Clone them.
//
// Sessions carry a cross-node subinstance memo by default (core/memo.go):
// decomposition subtrees verified all-done are skipped when the same
// projected subinstance recurs — across branches of one tree and across the
// session's lifetime of decisions, the access pattern of the incremental
// border/key/coterie loops and of repeated service traffic. MemoStats
// exposes the counters; NewSessionMemo sizes or disables the table.
type Session struct {
	eng Engine
	dec *core.Decider
	// rec is the session's attached stage-timing recorder — &recStore once
	// Recorder() has run, or an external one via SetRecorder. Like the
	// scratch it times, it is owned by whoever holds the session. The
	// storage lives in the Session itself so that attaching (even from a
	// //dual:allocfree caller like the batch drain loop) allocates nothing.
	rec      *obs.Recorder
	recStore obs.Recorder
	// poisoned marks a session a panic escaped from: its pinned scratch may
	// be mid-mutation, so it must not serve another decision. Only the
	// holder touches the flag (mark on recover, read on Release), and a
	// holder is single-goroutine by the session contract, so a plain bool
	// suffices.
	poisoned bool
}

// NewSession returns a session driving eng (nil = the default portfolio),
// with a default-sized subinstance memo.
func NewSession(eng Engine) *Session {
	return NewSessionMemo(eng, 0)
}

// NewSessionMemo is NewSession with an explicit memo bound: entries > 0
// sizes the table, entries == 0 applies core.DefaultMemoEntries, and a
// negative value disables memoization entirely.
func NewSessionMemo(eng Engine, entries int) *Session {
	if eng == nil {
		eng = Default()
	}
	s := &Session{eng: eng, dec: core.NewDecider()}
	if entries >= 0 {
		s.dec.EnableMemo(entries)
	}
	return s
}

// MemoStats snapshots the session's subinstance-memo counters (zeros when
// the memo is disabled). Safe to call concurrently with decisions.
func (s *Session) MemoStats() core.MemoStats { return s.dec.MemoStats() }

// Recorder returns the session's pinned stage-timing recorder, creating and
// attaching one on first use. Holders that consume per-decision timings
// (the service's /v1/decide handler, the batch drain workers) Reset it
// before each decision and read it out after; once attached, every decision
// on the session records stages, at the cost of a few clock reads and zero
// allocations. Decisions through engines that cannot use the pinned decider
// (FK, the parallel search) leave the engine stages at zero.
func (s *Session) Recorder() *obs.Recorder {
	if s.rec == nil {
		s.rec = &s.recStore
		s.dec.SetRecorder(s.rec)
	}
	return s.rec
}

// SetRecorder attaches an externally owned recorder (nil detaches both an
// external and a Recorder()-created one).
func (s *Session) SetRecorder(r *obs.Recorder) {
	s.rec = r
	s.dec.SetRecorder(r)
}

// MarkPoisoned flags the session as unusable: a panic escaped a decision on
// it, so its pinned scratch cannot be trusted. The holder calls this from
// its recover() boundary before handing the session back; SessionPool's
// Release replaces a poisoned session with a fresh one.
func (s *Session) MarkPoisoned() { s.poisoned = true }

// Poisoned reports whether MarkPoisoned has been called.
func (s *Session) Poisoned() bool { return s.poisoned }

// Engine returns the engine this session drives by default.
func (s *Session) Engine() Engine { return s.eng }

// Name reports the wrapped engine's name.
func (s *Session) Name() string { return s.eng.Name() }

// Caps reports the wrapped engine's capabilities.
func (s *Session) Caps() Caps { return s.eng.Caps() }

// Decide decides with the session's engine on the pinned scratch.
//
//dual:allocfree
func (s *Session) Decide(ctx context.Context, g, h *hypergraph.Hypergraph) (*core.Result, error) {
	return s.DecideWith(ctx, s.eng, g, h)
}

// DecideWith decides with an explicit engine (e.g. a per-request override)
// while still reusing the session's pinned scratch when that engine can.
//
//dual:allocfree
func (s *Session) DecideWith(ctx context.Context, eng Engine, g, h *hypergraph.Hypergraph) (*core.Result, error) {
	if db, ok := eng.(deciderBacked); ok {
		return db.decideWith(ctx, s.dec, g, h)
	}
	return eng.Decide(ctx, g, h)
}

// TrSubset decides tr(g) ⊆ h on the pinned scratch when the session's
// engine supports the raw tree stage, falling back like the package-level
// TrSubset otherwise.
//
//dual:allocfree
func (s *Session) TrSubset(ctx context.Context, g, h *hypergraph.Hypergraph) (*core.Result, error) {
	if db, ok := s.eng.(deciderBacked); ok {
		return db.trSubsetWith(ctx, s.dec, g, h)
	}
	return TrSubset(ctx, s.eng, g, h)
}
