package engine

import (
	"context"

	"dualspace/internal/core"
	"dualspace/internal/hypergraph"
)

// Session is the per-holder reuse layer: it wraps an engine together with a
// pinned core.Decider (classification scratch, frame stack, witness and
// result storage), so that repeated decisions from one long-lived holder —
// a service worker, an incremental border/key loop, a CLI batch — are
// allocation-free across calls, not just within one. Engines that cannot
// use the pinned scratch (the parallel search pools its own worker states;
// the FK recursion allocates per call by nature) simply decide statelessly
// through the same Session.
//
// A Session is itself an Engine, so it can be handed to any engine-accepting
// call site. It is NOT safe for concurrent use, and results returned through
// it alias the pinned storage: they are valid until the Session's next call,
// so holders that retain verdicts (e.g. a cache) must Clone them.
type Session struct {
	eng Engine
	dec *core.Decider
}

// NewSession returns a session driving eng (nil = the default portfolio).
func NewSession(eng Engine) *Session {
	if eng == nil {
		eng = Default()
	}
	return &Session{eng: eng, dec: core.NewDecider()}
}

// Engine returns the engine this session drives by default.
func (s *Session) Engine() Engine { return s.eng }

// Name reports the wrapped engine's name.
func (s *Session) Name() string { return s.eng.Name() }

// Caps reports the wrapped engine's capabilities.
func (s *Session) Caps() Caps { return s.eng.Caps() }

// Decide decides with the session's engine on the pinned scratch.
func (s *Session) Decide(ctx context.Context, g, h *hypergraph.Hypergraph) (*core.Result, error) {
	return s.DecideWith(ctx, s.eng, g, h)
}

// DecideWith decides with an explicit engine (e.g. a per-request override)
// while still reusing the session's pinned scratch when that engine can.
func (s *Session) DecideWith(ctx context.Context, eng Engine, g, h *hypergraph.Hypergraph) (*core.Result, error) {
	if db, ok := eng.(deciderBacked); ok {
		return db.decideWith(ctx, s.dec, g, h)
	}
	return eng.Decide(ctx, g, h)
}

// TrSubset decides tr(g) ⊆ h on the pinned scratch when the session's
// engine supports the raw tree stage, falling back like the package-level
// TrSubset otherwise.
func (s *Session) TrSubset(ctx context.Context, g, h *hypergraph.Hypergraph) (*core.Result, error) {
	if db, ok := s.eng.(deciderBacked); ok {
		return db.trSubsetWith(ctx, s.dec, g, h)
	}
	return TrSubset(ctx, s.eng, g, h)
}
