// Package fkdual implements the Fredman–Khachiyan duality-testing
// algorithms [15 in Gottlob, PODS 2013], the classical baselines against
// which the paper situates its space bounds.
//
// DecideA is a faithful implementation of Algorithm A: the standard
// self-reduction on a most frequent variable, with the necessary conditions
// (cross-intersection and the Σ2^{-|t|} ≥ 1 inequality) checked at every
// node and used to extract non-duality witnesses.
//
// DecideB implements an Algorithm-B-inspired variant: it adds B's χ(v)
// frequency policy for choosing the branching variable and direct resolution
// of instances whose smaller side has at most two terms. The full Algorithm
// B subproblem decomposition of [15] is NOT reproduced — the paper under
// reproduction uses FK only as background, and the variant preserves B's
// branching behaviour, which is what the baseline experiment (E9) compares.
// This deviation is documented in DESIGN.md.
//
// Witness semantics: for non-dual (f, g) a witness is a vertex set X with
// f(X) = g(V∖X), where a monotone DNF evaluates to true on X iff some term
// (edge) is contained in X. Both-true witnesses exhibit a non-intersecting
// term pair; both-false witnesses are complements of "new transversals" in
// the paper's sense. ViolatesDuality checks a witness.
package fkdual

import (
	"context"
	"fmt"
	"math"

	"dualspace/internal/bitset"
	"dualspace/internal/core"
	"dualspace/internal/hypergraph"
	"dualspace/internal/transversal"
)

// Stats reports the work done by a decision.
type Stats struct {
	// Calls is the number of recursion nodes visited.
	Calls int
	// MaxDepth is the deepest recursion level reached.
	MaxDepth int
}

// Result is the outcome of an FK duality test.
type Result struct {
	// Dual reports whether h = tr(g) (equivalently, the DNFs are dual).
	Dual bool
	// Witness, present when Dual is false, satisfies
	// f_g(Witness) == f_h(complement of Witness).
	Witness    bitset.Set
	HasWitness bool
	// Stats carries recursion counters.
	Stats Stats
}

// ViolatesDuality reports whether x witnesses non-duality of (g, h):
// f_g(x) == f_h(V∖x).
func ViolatesDuality(g, h *hypergraph.Hypergraph, x bitset.Set) bool {
	return evalDNF(g.Edges(), x) == evalDNF(h.Edges(), x.Complement())
}

// evalDNF evaluates the monotone DNF with the given terms at x.
func evalDNF(terms []bitset.Set, x bitset.Set) bool {
	for _, t := range terms {
		if t.SubsetOf(x) {
			return true
		}
	}
	return false
}

type algorithm int

const (
	algoA algorithm = iota
	algoB
)

// DecideA tests duality with Fredman–Khachiyan Algorithm A.
func DecideA(g, h *hypergraph.Hypergraph) (*Result, error) {
	return decide(context.Background(), g, h, algoA)
}

// DecideB tests duality with the Algorithm-B-inspired variant (see the
// package comment for the documented deviation).
func DecideB(g, h *hypergraph.Hypergraph) (*Result, error) {
	return decide(context.Background(), g, h, algoB)
}

// DecideAContext is DecideA with cancellation: the recursion polls ctx at
// every call node, so a cancelled ctx aborts the decision within one
// recursion step and surfaces ctx's error.
func DecideAContext(ctx context.Context, g, h *hypergraph.Hypergraph) (*Result, error) {
	return decide(ctx, g, h, algoA)
}

// DecideBContext is DecideB with cancellation (see DecideAContext).
func DecideBContext(ctx context.Context, g, h *hypergraph.Hypergraph) (*Result, error) {
	return decide(ctx, g, h, algoB)
}

func decide(ctx context.Context, g, h *hypergraph.Hypergraph, algo algorithm) (*Result, error) {
	if g.N() != h.N() {
		return nil, core.ErrUniverseMismatch
	}
	if err := g.ValidateSimple(); err != nil {
		return nil, fmt.Errorf("fkdual: g: %w", err)
	}
	if err := h.ValidateSimple(); err != nil {
		return nil, fmt.Errorf("fkdual: h: %w", err)
	}
	d := &decider{n: g.N(), algo: algo, done: ctx.Done()}
	f := cloneSets(g.Edges())
	gg := cloneSets(h.Edges())
	res := &Result{}
	dual, witness, hasW := d.rec(f, gg, 0)
	if d.cancelled {
		return nil, ctx.Err()
	}
	res.Dual = dual
	res.Witness = witness
	res.HasWitness = hasW
	res.Stats = d.stats
	return res, nil
}

func cloneSets(in []bitset.Set) []bitset.Set {
	out := make([]bitset.Set, len(in))
	for i, s := range in {
		out[i] = s.Clone()
	}
	return out
}

type decider struct {
	n     int
	algo  algorithm
	stats Stats
	// done, when non-nil, is the cancellation channel; rec polls it at every
	// call node and sets cancelled, after which every return value is
	// discarded by decide in favor of ctx's error.
	done      <-chan struct{}
	cancelled bool
}

// rec decides duality of the DNF pair (f, g); both families are simple.
// On non-dual it returns a witness x with f(x) == g(¬x).
func (d *decider) rec(f, g []bitset.Set, depth int) (bool, bitset.Set, bool) {
	if d.done != nil {
		select {
		case <-d.done:
			d.cancelled = true
			return true, bitset.Set{}, false // discarded by decide
		default:
		}
	}
	d.stats.Calls++
	if depth > d.stats.MaxDepth {
		d.stats.MaxDepth = depth
	}

	// Constant bases.
	if len(f) == 0 {
		return d.emptySideBase(f, g)
	}
	if len(g) == 0 {
		// x witnesses (f,g) iff V∖x witnesses (g,f).
		dual, w, has := d.emptySideBase(g, f)
		if has {
			w = w.Complement()
		}
		return dual, w, has
	}
	if hasEmpty(f) {
		return d.topSideBase(f, g, false)
	}
	if hasEmpty(g) {
		return d.topSideBase(g, f, true)
	}

	// Cross-intersection: a disjoint pair is a both-true witness.
	for _, ft := range f {
		for _, gt := range g {
			if !ft.Intersects(gt) {
				return false, ft.Clone(), true
			}
		}
	}

	// Singleton bases.
	if len(f) == 1 {
		return d.singleTermBase(f[0], g, false)
	}
	if len(g) == 1 {
		return d.singleTermBase(g[0], f, true)
	}

	// Algorithm B: resolve two-term sides directly.
	if d.algo == algoB && (len(f) <= 2 || len(g) <= 2) {
		return d.smallSideBase(f, g)
	}

	// The Fredman–Khachiyan inequality Σ 2^{-|t|} ≥ 1; failure yields a
	// both-false witness by derandomized rounding.
	if sumPotential(f, g) < 1 {
		return false, d.potentialWitness(f, g), true
	}

	// Branch variable.
	v := d.chooseVariable(f, g)

	f0, f1 := split(f, v)
	g0, g1 := split(g, v)

	// x=1 side: f|v=1 = min(f1 ∨ f0) vs g|v=0 = g0.
	if dual, w, _ := d.rec(minimizeSets(append(cloneSets(f1), f0...)), g0, depth+1); !dual {
		return false, w.WithElem(v), true
	}
	// x=0 side: f|v=0 = f0 vs g|v=1 = min(g1 ∨ g0).
	if dual, w, _ := d.rec(f0, minimizeSets(append(cloneSets(g1), g0...)), depth+1); !dual {
		return false, w.WithoutElem(v), true
	}
	return true, bitset.Set{}, false
}

// emptySideBase handles f = ⊥ (no terms): dual iff g = {∅}. The returned
// witness is valid for the (f, g) orientation; for the symmetric call note
// x witnesses (f,g) iff V∖x witnesses (g,f), and both constructions below
// are self-complementary in that sense (both sides evaluate false).
func (d *decider) emptySideBase(f, g []bitset.Set) (bool, bitset.Set, bool) {
	if len(g) == 1 && g[0].IsEmpty() {
		return true, bitset.Set{}, false
	}
	if len(g) == 0 {
		// Both ⊥: f(∅)=false, g(V)=false — both false.
		return false, bitset.New(d.n), true
	}
	// g nonempty without ∅-term: f(V)=false, g(∅)=false.
	return false, bitset.Full(d.n), true
}

// topSideBase handles a side equal to ⊤ = {∅}: dual iff the other side is
// ⊥. swap indicates the ⊤ side was the second argument.
func (d *decider) topSideBase(top, other []bitset.Set, swap bool) (bool, bitset.Set, bool) {
	if len(other) == 0 {
		return true, bitset.Set{}, false
	}
	// top(∅...) is always true; other side has a term, so evaluating it at
	// the full set is true as well: with x chosen so the top side sees ∅
	// and the other side sees V we get both true.
	if !swap {
		// f = top: f(x)=true always; need g(¬x)=true: ¬x = V.
		return false, bitset.New(d.n), true
	}
	// g = top: g(¬x)=true always; need f(x)=true: x = V.
	return false, bitset.Full(d.n), true
}

// singleTermBase handles |f| = 1: dual iff g is exactly the singletons of
// the term. The pair is already cross-intersecting and ∅-free. swap
// indicates the single term belongs to the second argument; the returned
// witness is always for the original (f, g) orientation, using the fact
// that x witnesses (f,g) iff V∖x witnesses (g,f).
func (d *decider) singleTermBase(term bitset.Set, g []bitset.Set, swap bool) (bool, bitset.Set, bool) {
	orient := func(x bitset.Set) bitset.Set {
		if swap {
			return x.Complement()
		}
		return x
	}
	// A missing singleton {v}, v ∈ term, yields both-false x = V∖{v}:
	// f(x) false since term ⊄ x; g(¬x) = g({v}) false since {v} ∉ g and
	// every g-term is nonempty.
	missing := -1
	term.ForEach(func(v int) bool {
		found := false
		for _, e := range g {
			if e.Len() == 1 && e.Contains(v) {
				found = true
				break
			}
		}
		if !found {
			missing = v
			return false
		}
		return true
	})
	if missing >= 0 {
		return false, orient(bitset.Full(d.n).WithoutElem(missing)), true
	}
	// All singletons present. An extra g-term would either meet term —
	// impossible for a simple family already containing the singletons — or
	// be disjoint from it, which the caller's cross-intersection check has
	// excluded. So g = singletons(term) exactly iff the sizes agree.
	if len(g) == term.Len() {
		return true, bitset.Set{}, false
	}
	panic("fkdual: singleTermBase invariant violated (caller must check cross-intersection)")
}

// smallSideBase (Algorithm B) resolves instances whose smaller side has at
// most two terms by direct dualization of that side.
func (d *decider) smallSideBase(f, g []bitset.Set) (bool, bitset.Set, bool) {
	swap := false
	small, large := f, g
	if len(f) > len(g) {
		small, large = g, f
		swap = true
	}
	orient := func(x bitset.Set) bitset.Set {
		if swap {
			return x.Complement()
		}
		return x
	}
	tr := transversal.Berge(hypergraph.FromSets(d.n, small))
	// Minimal transversal missing from large: both-false witness ¬t.
	for _, t := range tr.Edges() {
		found := false
		for _, e := range large {
			if e.Equal(t) {
				found = true
				break
			}
		}
		if !found {
			return false, orient(t.Complement()), true
		}
	}
	if tr.M() == len(large) {
		return true, bitset.Set{}, false
	}
	// Extra edge in large: it is a transversal (cross-intersection) but not
	// minimal; drop a redundant vertex for a both-false witness.
	for _, e := range large {
		if tr.ContainsEdge(e) {
			continue
		}
		shrunk := e.Clone()
		e.ForEach(func(u int) bool {
			cand := shrunk.WithoutElem(u)
			if hypergraph.FromSets(d.n, small).IsTransversal(cand) {
				shrunk = cand
			}
			return true
		})
		return false, orient(shrunk.Complement()), true
	}
	panic("fkdual: smallSideBase inconsistency")
}

// sumPotential computes Σ_f 2^{-|f|} + Σ_g 2^{-|g|}.
func sumPotential(f, g []bitset.Set) float64 {
	s := 0.0
	for _, t := range f {
		s += math.Pow(2, -float64(t.Len()))
	}
	for _, t := range g {
		s += math.Pow(2, -float64(t.Len()))
	}
	return s
}

// potentialWitness derandomizes the probabilistic argument: when the FK sum
// is below 1, assign each variable to keep the conditional potential below
// 1; the final assignment falsifies every term on both sides.
func (d *decider) potentialWitness(f, g []bitset.Set) bitset.Set {
	x := bitset.New(d.n)
	xComp := bitset.Full(d.n) // maintained complement of x, for the fused probes
	assigned := bitset.New(d.n)
	vars := bitset.New(d.n)
	for _, t := range f {
		vars.UnionInto(t, vars) //dual:allow(bitsetalias: word-parallel accumulation into vars)
	}
	for _, t := range g {
		vars.UnionInto(t, vars) //dual:allow(bitsetalias: word-parallel accumulation into vars)
	}
	potential := func() float64 {
		s := 0.0
		for _, t := range f {
			// Falsified if an assigned variable of t is outside x, i.e.
			// t ∩ assigned ∩ ¬x ≠ ∅ — one fused probe, nothing materialized.
			if t.TripleIntersects(assigned, xComp) {
				continue
			}
			s += math.Pow(2, -float64(t.AndNotAndCount(assigned)))
		}
		for _, t := range g {
			// g is evaluated at ¬x: falsified if an assigned variable of t
			// is inside x.
			if t.TripleIntersects(assigned, x) {
				continue
			}
			s += math.Pow(2, -float64(t.AndNotAndCount(assigned)))
		}
		return s
	}
	vars.ForEach(func(v int) bool {
		assigned.Add(v)
		x.Add(v) // try v ∈ x
		xComp.Remove(v)
		pIn := potential()
		x.Remove(v) // try v ∉ x
		xComp.Add(v)
		pOut := potential()
		if pIn < pOut {
			x.Add(v)
			xComp.Remove(v)
		}
		return true
	})
	return x
}

// chooseVariable picks the branching variable: Algorithm A takes a most
// frequent variable overall; the B variant prefers a variable reaching the
// 1/χ(v) frequency threshold in either family, falling back to the most
// frequent one.
func (d *decider) chooseVariable(f, g []bitset.Set) int {
	cntF := make([]int, d.n)
	cntG := make([]int, d.n)
	for _, t := range f {
		t.ForEach(func(v int) bool { cntF[v]++; return true })
	}
	for _, t := range g {
		t.ForEach(func(v int) bool { cntG[v]++; return true })
	}
	if d.algo == algoB {
		eps := 1.0 / Chi(float64(len(f))*float64(len(g)))
		best, bestFreq := -1, 0.0
		for v := 0; v < d.n; v++ {
			fr := math.Max(float64(cntF[v])/float64(len(f)), float64(cntG[v])/float64(len(g)))
			if fr >= eps && fr > bestFreq {
				best, bestFreq = v, fr
			}
		}
		if best >= 0 {
			return best
		}
	}
	best, bestCnt := -1, -1
	for v := 0; v < d.n; v++ {
		if c := cntF[v] + cntG[v]; c > bestCnt {
			best, bestCnt = v, c
		}
	}
	if bestCnt <= 0 {
		panic("fkdual: no branching variable")
	}
	return best
}

// split partitions terms by variable v: t0 = terms without v, t1 = terms
// containing v with v removed.
func split(terms []bitset.Set, v int) (t0, t1 []bitset.Set) {
	for _, t := range terms {
		if t.Contains(v) {
			t1 = append(t1, t.WithoutElem(v))
		} else {
			t0 = append(t0, t.Clone())
		}
	}
	return t0, t1
}

// minimizeSets removes duplicates and supersets, keeping first occurrences.
func minimizeSets(sets []bitset.Set) []bitset.Set {
	var out []bitset.Set
	for i, s := range sets {
		keep := true
		for j, t := range sets {
			if i == j {
				continue
			}
			if t.ProperSubsetOf(s) || (t.Equal(s) && j < i) {
				keep = false
				break
			}
		}
		if keep {
			out = append(out, s)
		}
	}
	return out
}

// hasEmpty reports whether some term is empty.
func hasEmpty(terms []bitset.Set) bool {
	for _, t := range terms {
		if t.IsEmpty() {
			return true
		}
	}
	return false
}

// Chi solves χ^χ = v for v > 1 (the Fredman–Khachiyan threshold function);
// Chi(v) ≤ 1 for v ≤ 1.
func Chi(v float64) float64 {
	if v <= 1 {
		return 1
	}
	lo, hi := 1.0, math.Max(2.0, math.Log2(v)+1)
	for i := 0; i < 80; i++ {
		mid := (lo + hi) / 2
		if mid*math.Log(mid) < math.Log(v) {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}
