package fkdual_test

import (
	"testing"

	"dualspace/internal/fkdual"
	"dualspace/internal/hypergraph"
)

// TestSingleTermOnSecondSide exercises the swapped orientation of the
// single-term base case (|g| = 1 while |f| > 1).
func TestSingleTermOnSecondSide(t *testing.T) {
	single := hypergraph.MustFromEdges(3, [][]int{{0, 1, 2}})
	singletons := hypergraph.MustFromEdges(3, [][]int{{0}, {1}, {2}})
	missing := hypergraph.MustFromEdges(3, [][]int{{0}, {1}})
	for name, decide := range algorithms {
		res, err := decide(singletons, single)
		if err != nil || !res.Dual {
			t.Fatalf("%s: swapped single-term dual pair rejected: %v %v", name, res, err)
		}
		res, err = decide(missing, single)
		if err != nil {
			t.Fatal(err)
		}
		if res.Dual {
			t.Fatalf("%s: missing singleton accepted (swapped)", name)
		}
		if !res.HasWitness || !fkdual.ViolatesDuality(missing, single, res.Witness) {
			t.Fatalf("%s: bad witness %v (swapped single-term)", name, res.Witness)
		}
	}
}

// TestSmallSideSwapped exercises Algorithm B's two-term base with the small
// side second.
func TestSmallSideSwapped(t *testing.T) {
	small := hypergraph.MustFromEdges(4, [][]int{{0, 1}, {2, 3}})
	big := hypergraph.MustFromEdges(4, [][]int{{0, 2}, {0, 3}, {1, 2}, {1, 3}})
	res, err := fkdual.DecideB(big, small)
	if err != nil || !res.Dual {
		t.Fatalf("B swapped small side: %v %v", res, err)
	}
	// Missing transversal, small side second.
	incomplete := hypergraph.MustFromEdges(4, [][]int{{0, 2}, {0, 3}, {1, 2}})
	res, err = fkdual.DecideB(incomplete, small)
	if err != nil {
		t.Fatal(err)
	}
	if res.Dual || !fkdual.ViolatesDuality(incomplete, small, res.Witness) {
		t.Fatalf("B swapped missing transversal: %v", res)
	}
}

// TestSmallSideExtraEdge exercises the non-minimal-edge branch of the
// two-term base: the large side contains a transversal that is not minimal.
func TestSmallSideExtraEdge(t *testing.T) {
	g := hypergraph.MustFromEdges(4, [][]int{{0, 1}, {2, 3}})
	// {1,2,3} is a non-minimal transversal of g; the family is simple.
	h := hypergraph.MustFromEdges(4, [][]int{{0, 2}, {0, 3}, {1, 2, 3}})
	res, err := fkdual.DecideB(g, h)
	if err != nil {
		t.Fatal(err)
	}
	if res.Dual {
		t.Fatal("non-minimal h-edge accepted")
	}
	if !res.HasWitness || !fkdual.ViolatesDuality(g, h, res.Witness) {
		t.Fatalf("bad witness %v for extra-edge case", res.Witness)
	}
	// And with the sides swapped.
	res, err = fkdual.DecideB(h, g)
	if err != nil {
		t.Fatal(err)
	}
	if res.Dual || !fkdual.ViolatesDuality(h, g, res.Witness) {
		t.Fatalf("swapped extra-edge case: %v", res)
	}
}

// TestBothEmptyFamilies covers the ⊥/⊥ constant pair in both argument
// orders.
func TestBothEmptyFamilies(t *testing.T) {
	bot := hypergraph.New(2)
	for name, decide := range algorithms {
		res, err := decide(bot, bot)
		if err != nil {
			t.Fatal(err)
		}
		if res.Dual {
			t.Fatalf("%s: ⊥/⊥ accepted as dual", name)
		}
		if !res.HasWitness || !fkdual.ViolatesDuality(bot, bot, res.Witness) {
			t.Fatalf("%s: bad ⊥/⊥ witness", name)
		}
	}
}

// TestPotentialWitnessPath forces the Σ2^{-|t|} < 1 branch: two long terms
// on each side that cross-intersect but fail the volume condition.
func TestPotentialWitnessPath(t *testing.T) {
	n := 8
	g := hypergraph.MustFromEdges(n, [][]int{{0, 1, 2, 3, 4}, {0, 5, 6, 7, 1}})
	h := hypergraph.MustFromEdges(n, [][]int{{0, 2, 5, 3, 6}, {1, 4, 7, 2, 5}})
	for name, decide := range algorithms {
		res, err := decide(g, h)
		if err != nil {
			t.Fatal(err)
		}
		if res.Dual {
			t.Fatalf("%s: volume-deficient pair accepted", name)
		}
		if !res.HasWitness || !fkdual.ViolatesDuality(g, h, res.Witness) {
			t.Fatalf("%s: bad witness for potential path", name)
		}
	}
}
