package fkdual_test

import (
	"math"
	"math/rand"
	"testing"

	"dualspace/internal/bitset"
	"dualspace/internal/core"
	"dualspace/internal/fkdual"
	"dualspace/internal/hypergraph"
	"dualspace/internal/transversal"
)

type decideFunc func(g, h *hypergraph.Hypergraph) (*fkdual.Result, error)

var algorithms = map[string]decideFunc{
	"A": fkdual.DecideA,
	"B": fkdual.DecideB,
}

func TestConstants(t *testing.T) {
	n := 3
	bot := hypergraph.New(n)
	top := hypergraph.MustFromEdges(n, [][]int{{}})
	x := hypergraph.MustFromEdges(n, [][]int{{0}})
	for name, decide := range algorithms {
		for _, c := range []struct {
			g, h *hypergraph.Hypergraph
			dual bool
		}{
			{bot, top, true}, {top, bot, true},
			{bot, bot, false}, {top, top, false},
			{bot, x, false}, {x, bot, false},
			{top, x, false}, {x, top, false},
		} {
			res, err := decide(c.g, c.h)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if res.Dual != c.dual {
				t.Errorf("%s: Decide(%v,%v) = %v, want %v", name, c.g, c.h, res.Dual, c.dual)
			}
			if !res.Dual {
				if !res.HasWitness {
					t.Errorf("%s: no witness for non-dual constants %v/%v", name, c.g, c.h)
				} else if !fkdual.ViolatesDuality(c.g, c.h, res.Witness) {
					t.Errorf("%s: invalid witness %v for %v/%v", name, res.Witness, c.g, c.h)
				}
			}
		}
	}
}

func TestKnownPairs(t *testing.T) {
	cases := []struct {
		name string
		n    int
		g, h [][]int
		dual bool
	}{
		{"and/or", 2, [][]int{{0, 1}}, [][]int{{0}, {1}}, true},
		{"self-dual triangle", 3, [][]int{{0, 1}, {1, 2}, {0, 2}}, [][]int{{0, 1}, {1, 2}, {0, 2}}, true},
		{"matching-2", 4, [][]int{{0, 1}, {2, 3}}, [][]int{{0, 2}, {0, 3}, {1, 2}, {1, 3}}, true},
		{"missing transversal", 4, [][]int{{0, 1}, {2, 3}}, [][]int{{0, 2}, {0, 3}, {1, 2}}, false},
		{"disjoint pair", 4, [][]int{{0, 1}}, [][]int{{2, 3}}, false},
		{"non-minimal edge", 4, [][]int{{0, 1}, {2, 3}}, [][]int{{0, 2, 3}, {1, 2}, {1, 3}}, false},
		{"single term", 3, [][]int{{0, 1, 2}}, [][]int{{0}, {1}, {2}}, true},
		{"single term missing singleton", 3, [][]int{{0, 1, 2}}, [][]int{{0}, {1}}, false},
	}
	for name, decide := range algorithms {
		for _, c := range cases {
			g := hypergraph.MustFromEdges(c.n, c.g)
			h := hypergraph.MustFromEdges(c.n, c.h)
			res, err := decide(g, h)
			if err != nil {
				t.Fatalf("%s/%s: %v", name, c.name, err)
			}
			if res.Dual != c.dual {
				t.Errorf("%s/%s: Dual = %v, want %v", name, c.name, res.Dual, c.dual)
			}
			if !res.Dual {
				if !res.HasWitness || !fkdual.ViolatesDuality(g, h, res.Witness) {
					t.Errorf("%s/%s: bad witness %v (has=%v)", name, c.name, res.Witness, res.HasWitness)
				}
			}
		}
	}
}

func TestAgainstCore(t *testing.T) {
	r := rand.New(rand.NewSource(61))
	for i := 0; i < 150; i++ {
		n := 2 + r.Intn(7)
		g := randomSimple(r, n, 1+r.Intn(6))
		h := transversal.AsHypergraph(g)
		// Randomly perturb h: drop an edge, or replace with another random
		// simple hypergraph.
		switch r.Intn(3) {
		case 0:
			// keep exact dual
		case 1:
			if h.M() >= 2 {
				h = dropEdge(h, r.Intn(h.M()))
			}
		case 2:
			h = randomSimple(r, n, 1+r.Intn(6))
		}
		want, err := core.Decide(g, h)
		if err != nil {
			t.Fatal(err)
		}
		for name, decide := range algorithms {
			res, err := decide(g, h)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if res.Dual != want.Dual {
				t.Fatalf("%s: Dual=%v, core says %v (g=%v h=%v)", name, res.Dual, want.Dual, g, h)
			}
			if !res.Dual {
				if !res.HasWitness {
					t.Fatalf("%s: missing witness (g=%v h=%v)", name, g, h)
				}
				if !fkdual.ViolatesDuality(g, h, res.Witness) {
					t.Fatalf("%s: invalid witness %v (g=%v h=%v)", name, res.Witness, g, h)
				}
			}
		}
	}
}

func TestSelfDualityMajority(t *testing.T) {
	for _, n := range []int{3, 5, 7} {
		maj := majority(n)
		for name, decide := range algorithms {
			res, err := decide(maj, maj)
			if err != nil {
				t.Fatal(err)
			}
			if !res.Dual {
				t.Errorf("%s: majority(%d) not recognized self-dual", name, n)
			}
		}
	}
}

func TestStatsPopulated(t *testing.T) {
	g := hypergraph.MustFromEdges(6, [][]int{{0, 1}, {2, 3}, {4, 5}})
	h := transversal.AsHypergraph(g)
	res, err := fkdual.DecideA(g, h)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Calls < 2 || res.Stats.MaxDepth < 1 {
		t.Errorf("stats not populated: %+v", res.Stats)
	}
}

func TestValidation(t *testing.T) {
	g := hypergraph.MustFromEdges(3, [][]int{{0, 1}})
	bad := hypergraph.MustFromEdges(3, [][]int{{0}, {0, 1}})
	wrong := hypergraph.MustFromEdges(4, [][]int{{0}})
	for name, decide := range algorithms {
		if _, err := decide(g, bad); err == nil {
			t.Errorf("%s: non-simple accepted", name)
		}
		if _, err := decide(bad, g); err == nil {
			t.Errorf("%s: non-simple accepted", name)
		}
		if _, err := decide(g, wrong); err == nil {
			t.Errorf("%s: universe mismatch accepted", name)
		}
	}
}

func TestChi(t *testing.T) {
	for _, v := range []float64{2, 10, 100, 1e6, 1e12} {
		c := fkdual.Chi(v)
		if got := c * math.Log(c); math.Abs(got-math.Log(v)) > 1e-6 {
			t.Errorf("Chi(%g)=%g: χlnχ=%g, want %g", v, c, got, math.Log(v))
		}
	}
	if fkdual.Chi(0.5) != 1 || fkdual.Chi(1) != 1 {
		t.Error("Chi below 1 should clamp")
	}
}

func majority(n int) *hypergraph.Hypergraph {
	k := n/2 + 1
	h := hypergraph.New(n)
	var build func(start int, cur []int)
	build = func(start int, cur []int) {
		if len(cur) == k {
			h.AddEdgeElems(cur...)
			return
		}
		for v := start; v < n; v++ {
			build(v+1, append(cur, v))
		}
	}
	build(0, nil)
	return h
}

func dropEdge(h *hypergraph.Hypergraph, i int) *hypergraph.Hypergraph {
	out := hypergraph.New(h.N())
	for j := 0; j < h.M(); j++ {
		if j != i {
			out.AddEdge(h.Edge(j))
		}
	}
	return out
}

func randomSimple(r *rand.Rand, n, m int) *hypergraph.Hypergraph {
	raw := hypergraph.New(n)
	for i := 0; i < m; i++ {
		e := bitset.New(n)
		for v := 0; v < n; v++ {
			if r.Intn(3) == 0 {
				e.Add(v)
			}
		}
		if e.IsEmpty() {
			e.Add(r.Intn(n))
		}
		raw.AddEdge(e)
	}
	return raw.Minimize()
}

func BenchmarkDecideAMatching(b *testing.B) { benchmarkDecide(b, fkdual.DecideA) }
func BenchmarkDecideBMatching(b *testing.B) { benchmarkDecide(b, fkdual.DecideB) }

func benchmarkDecide(b *testing.B, decide decideFunc) {
	k := 4
	edges := make([][]int, k)
	for i := range edges {
		edges[i] = []int{2 * i, 2*i + 1}
	}
	g := hypergraph.MustFromEdges(2*k, edges)
	h := transversal.AsHypergraph(g)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := decide(g, h)
		if err != nil || !res.Dual {
			b.Fatal("wrong verdict")
		}
	}
}
