package allocfree_test

import (
	"testing"

	"dualspace/internal/analysis/allocfree"
	"dualspace/internal/analysis/analysistest"
)

func TestAlloc(t *testing.T) {
	analysistest.Run(t, allocfree.Analyzer, "alloc")
}

func TestNoFalsePositives(t *testing.T) {
	analysistest.Run(t, allocfree.Analyzer, "nofp")
}
