// Allocation fixture: each rejected construct inside a //dual:allocfree
// function, plus the same constructs unflagged in an unannotated twin.
package fixture

import "fmt"

//dual:allocfree
func hot(xs []int, s string) int {
	total := 0
	for _, x := range xs {
		total += x
		_ = fmt.Sprint(x) // want `call to fmt.Sprint allocates`
		t := s + "!"      // want `string concatenation in a loop`
		s += t            // want `string concatenation in a loop`
		_ = []byte(s)     // want `string conversion in a loop`
		_ = string(xs[0]) // want `string conversion in a loop`
	}
	m := map[int]int{} // want `map literal`
	_ = m
	sl := []int{1, 2} // want `slice literal`
	_ = sl
	_ = make([]int, 4)               // want `make allocates`
	_ = new(int)                     // want `new allocates`
	f := func() int { return total } // want `closure capturing "total" allocates`
	_ = f
	_ = any(total) // want `conversion of non-pointer int to interface any allocates`
	return total
}

//dual:allocfree
func hotAllowed(xs []int) string {
	out := ""
	for _, x := range xs {
		if x < 0 {
			// Cold path: only reached on invariant violation.
			out = fmt.Sprint(x) //dual:allow(allocfree: cold error path)
		}
	}
	return out
}

//dual:allocfree
func hotClean(xs []int, scratch []int) int {
	// Constructs that do not allocate stay clean: constant-folded
	// concatenation, static closures, pointer/interface pass-through,
	// loop-free conversions.
	const greeting = "a" + "b"
	total := 0
	for i := range xs {
		total += xs[i]
		scratch[i&(len(scratch)-1)] = total
	}
	f := func(x int) int { return x * 2 } // captures nothing: clean
	total = f(total)
	var e error
	_ = error(e) // interface to interface: clean
	b := []byte(greeting)
	_ = b
	return total
}

// Unannotated twin: the same constructs are fine outside hot paths.
func cold(xs []int, s string) {
	for _, x := range xs {
		_ = fmt.Sprint(x)
		s += "!"
	}
	_ = map[int]int{}
	_ = make([]int, 4)
}
