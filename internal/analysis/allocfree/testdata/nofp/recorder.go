// No-false-positive fixture: a recorder-shaped stage-timing hook inside a
// //dual:allocfree hot step, the pattern internal/obs threads through the
// decider and the batch drain loop. A nil-guarded pointer to preallocated
// stage storage, time.Now/time.Since reads, array (not slice) composite
// literals in Reset, and atomic-style accumulation must all stay clean.
package fixture

import "time"

const numStages = 7

// stageRec accumulates per-stage nanoseconds into a fixed array — no maps,
// no slices, no boxing.
type stageRec struct {
	t [numStages]int64
}

func (r *stageRec) reset() {
	if r == nil {
		return
	}
	r.t = [numStages]int64{}
}

func (r *stageRec) add(stage int, d time.Duration) {
	if r == nil {
		return
	}
	r.t[stage] += int64(d)
}

// timedWalker pairs pinned scratch with an optionally attached recorder.
type timedWalker struct {
	rec     *stageRec
	scratch []int64
	nodes   int
}

//dual:allocfree
func (w *timedWalker) step(stage int) bool {
	var t0 time.Time
	if w.rec != nil {
		t0 = time.Now()
	}
	for i := range w.scratch {
		w.scratch[i]++
		w.nodes++
	}
	if w.rec != nil {
		w.rec.add(stage, time.Since(t0))
	}
	return w.nodes > 0
}

//dual:allocfree
func (w *timedWalker) run() {
	w.rec.reset()
	for s := 0; s < numStages; s++ {
		if !w.step(s) {
			return
		}
	}
}
