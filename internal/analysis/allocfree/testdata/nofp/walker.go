// No-false-positive fixture: a serialWalk-shaped function over
// preallocated scratch, annotated //dual:allocfree. Index arithmetic,
// in-place bitset algebra, appends into reused buffers, and method calls
// on scratch must all stay clean.
package fixture

import "dualspace/internal/bitset"

type frame struct {
	children []bitset.Set
	rem      []int
}

type walker struct {
	frames  []frame
	gProj   bitset.Set
	tmp     bitset.Set
	wit     bitset.Set
	hits    []int
	depth   int
	visited int
}

//dual:allocfree
func (w *walker) walk(edges []bitset.Set, s bitset.Set, depth int) bool {
	fr := &w.frames[depth]
	fr.rem = fr.rem[:0]
	for i, e := range edges {
		e.IntersectInto(s, w.gProj)
		if w.gProj.IsEmpty() {
			fr.rem = append(fr.rem, i)
			continue
		}
		w.gProj.DiffInto(w.tmp, w.wit)
		w.hits[i&(len(w.hits)-1)]++
		w.visited++
	}
	for _, i := range fr.rem {
		if i > w.depth {
			return false
		}
	}
	return true
}

//dual:allocfree
func (w *walker) reset(s bitset.Set) {
	w.wit.CopyFrom(s)
	w.tmp.Clear()
	for i := range w.hits {
		w.hits[i] = 0
	}
	w.visited = 0
}
