// No-false-positive fixture: a serialWalk-shaped function over
// preallocated scratch, annotated //dual:allocfree. Index arithmetic,
// in-place bitset algebra, appends into reused buffers, and method calls
// on scratch must all stay clean.
package fixture

import "dualspace/internal/bitset"

type frame struct {
	children []bitset.Set
	rem      []int
}

type walker struct {
	frames  []frame
	gProj   bitset.Set
	tmp     bitset.Set
	wit     bitset.Set
	hits    []int
	depth   int
	visited int
}

//dual:allocfree
func (w *walker) walk(edges []bitset.Set, s bitset.Set, depth int) bool {
	fr := &w.frames[depth]
	fr.rem = fr.rem[:0]
	for i, e := range edges {
		e.IntersectInto(s, w.gProj)
		if w.gProj.IsEmpty() {
			fr.rem = append(fr.rem, i)
			continue
		}
		w.gProj.DiffInto(w.tmp, w.wit)
		w.hits[i&(len(w.hits)-1)]++
		w.visited++
	}
	for _, i := range fr.rem {
		if i > w.depth {
			return false
		}
	}
	return true
}

// Capturing closures handed straight to bitset.Set.ForEach are exempt:
// the callee does not retain its callback, so the literal stays on the
// stack (the escape gate guards the regression). The same closure held in
// a variable first is still flagged — only the direct-argument form is
// known safe.
//
//dual:allocfree
func (w *walker) accumulate(s bitset.Set) int {
	total := 0
	s.ForEach(func(e int) bool {
		w.hits[e&(len(w.hits)-1)]++ // captures w: clean, ForEach does not retain
		total += e                  // captures total: clean for the same reason
		return true
	})
	f := func(e int) bool { return e < w.visited } // want `closure capturing "w" allocates`
	s.ForEach(f)
	return total
}

//dual:allocfree
func (w *walker) reset(s bitset.Set) {
	w.wit.CopyFrom(s)
	w.tmp.Clear()
	for i := range w.hits {
		w.hits[i] = 0
	}
	w.visited = 0
}
