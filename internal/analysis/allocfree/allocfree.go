// Package allocfree rejects allocating constructs inside functions
// annotated //dual:allocfree. Those functions are the kernel's steady-state
// hot paths (the serial walker, Session.Decide, the bitset in-place ops,
// the batch scheduler's drain loop): the paper's complexity argument prices
// them as pointer-chasing over preallocated scratch, and the AllocsPerRun
// regression tests only cover the shapes they happen to exercise. This
// analyzer rejects the constructs the compiler is allowed to heap-allocate
// regardless of input shape:
//
//   - any call into package fmt
//   - string concatenation and string<->[]byte/[]rune conversions inside
//     loops
//   - map, slice, and pointer-producing composite literals
//   - make / new
//   - function literals that capture enclosing variables (closure
//     allocation)
//   - explicit conversions of non-pointer concrete values to interface
//     types (boxing)
//
// Cold-path constructs (error formatting on a panic branch, a one-time
// lazy build) carry //dual:allow(allocfree: reason).
package allocfree

import (
	"go/ast"
	"go/token"
	"go/types"

	"dualspace/internal/analysis"
)

// Analyzer is the allocfree rule.
var Analyzer = &analysis.Analyzer{
	Name: "allocfree",
	Doc:  "reject allocating constructs in //dual:allocfree functions",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !analysis.IsAllocFree(fn) {
				continue
			}
			check(pass, fn)
		}
	}
	return nil
}

func check(pass *analysis.Pass, fn *ast.FuncDecl) {
	info := pass.TypesInfo
	// Positions of function literals passed directly to a non-retaining
	// callee (see nonRetainingCallback): exempt from the capture check.
	// Inspect visits a CallExpr before its arguments, so the set is always
	// populated before the literal itself is reached.
	noCapture := map[token.Pos]bool{}
	// Loop bodies currently open above the visited node. A node is "in a
	// loop" when it sits inside the Body of an enclosing for/range
	// statement (loop headers — init, cond, post, the ranged expression —
	// run O(1) times relative to the loop and are checked loop-free).
	var bodies []*ast.BlockStmt
	inLoop := func(n ast.Node) bool {
		for _, b := range bodies {
			if n.Pos() >= b.Pos() && n.End() <= b.End() {
				return true
			}
		}
		return false
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if n == nil {
			return true
		}
		for len(bodies) > 0 && n.Pos() >= bodies[len(bodies)-1].End() {
			bodies = bodies[:len(bodies)-1]
		}
		loopDepth := 0
		if inLoop(n) {
			loopDepth = 1
		}
		switch n := n.(type) {
		case *ast.ForStmt:
			bodies = append(bodies, n.Body)
		case *ast.RangeStmt:
			bodies = append(bodies, n.Body)
		case *ast.CallExpr:
			if arg, ok := nonRetainingCallback(info, n); ok {
				noCapture[arg.Pos()] = true
			}
			checkCall(pass, info, n, loopDepth)
		case *ast.BinaryExpr:
			if loopDepth > 0 && n.Op == token.ADD && isString(info.Types[n.X].Type) && info.Types[n].Value == nil {
				pass.Reportf(n.OpPos, "string concatenation in a loop inside //dual:allocfree function %s", fn.Name.Name)
			}
		case *ast.AssignStmt:
			if loopDepth > 0 && n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 && isString(info.Types[n.Lhs[0]].Type) {
				pass.Reportf(n.TokPos, "string concatenation in a loop inside //dual:allocfree function %s", fn.Name.Name)
			}
		case *ast.CompositeLit:
			switch types.Unalias(info.Types[n].Type).Underlying().(type) {
			case *types.Map:
				pass.Reportf(n.Pos(), "map literal in //dual:allocfree function %s", fn.Name.Name)
			case *types.Slice:
				pass.Reportf(n.Pos(), "slice literal in //dual:allocfree function %s", fn.Name.Name)
			}
		case *ast.FuncLit:
			if noCapture[n.Pos()] {
				break
			}
			if captured := captures(info, fn, n); captured != "" {
				pass.Reportf(n.Pos(), "closure capturing %q allocates in //dual:allocfree function %s", captured, fn.Name.Name)
			}
		}
		return true
	})
}

func checkCall(pass *analysis.Pass, info *types.Info, call *ast.CallExpr, loopDepth int) {
	// Conversions: T(x) parses as a call. String conversions allocate; so
	// does boxing a concrete non-pointer value into an interface.
	if tv, ok := info.Types[ast.Unparen(call.Fun)]; ok && tv.IsType() && len(call.Args) == 1 {
		to := tv.Type
		from := info.Types[call.Args[0]].Type
		if loopDepth > 0 && stringConversion(from, to) {
			pass.Reportf(call.Pos(), "string conversion in a loop allocates")
		}
		if boxes(from, to) {
			pass.Reportf(call.Pos(), "conversion of non-pointer %s to interface %s allocates", types.TypeString(from, nil), types.TypeString(to, nil))
		}
		return
	}
	obj := analysis.Callee(info, call)
	if obj == nil {
		return
	}
	if analysis.PkgPath(obj) == "fmt" {
		pass.Reportf(call.Pos(), "call to fmt.%s allocates", obj.Name())
		return
	}
	if b, ok := obj.(*types.Builtin); ok {
		switch b.Name() {
		case "make":
			pass.Reportf(call.Pos(), "make allocates")
		case "new":
			pass.Reportf(call.Pos(), "new allocates")
		}
	}
}

func isString(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func stringConversion(from, to types.Type) bool {
	if from == nil || to == nil {
		return false
	}
	// string([]byte), string(rune), string(int), []byte(s), []rune(s) all
	// materialize fresh backing storage; string(string) does not.
	return (isString(to) && !isString(from)) || (isByteOrRuneSlice(to) && isString(from))
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune)
}

func boxes(from, to types.Type) bool {
	if from == nil || to == nil {
		return false
	}
	if _, isIface := to.Underlying().(*types.Interface); !isIface {
		return false
	}
	switch from.Underlying().(type) {
	case *types.Interface, *types.Pointer:
		return false
	}
	return true
}

// captures returns the name of a variable declared in the enclosing
// function that the literal closes over, or "" if the literal is static.
func captures(info *types.Info, outer *ast.FuncDecl, lit *ast.FuncLit) string {
	name := ""
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if name != "" {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := info.Uses[id]
		v, isVar := obj.(*types.Var)
		if !isVar || v.IsField() {
			return true
		}
		// Captured iff declared inside the outer function but outside the
		// literal.
		if v.Pos() > outer.Pos() && v.Pos() < outer.End() && (v.Pos() < lit.Pos() || v.Pos() > lit.End()) {
			name = v.Name()
		}
		return true
	})
	return name
}

// nonRetainingCallback returns the function-literal argument of a call
// whose callee is documented not to retain its callback. Such a closure is
// stack-allocated (the compiler inlines or keeps it local); if it ever
// started escaping through a different path, the escape-analysis gate on
// the enclosing //dual:allocfree function would catch the regression.
func nonRetainingCallback(info *types.Info, call *ast.CallExpr) (*ast.FuncLit, bool) {
	if len(call.Args) != 1 {
		return nil, false
	}
	lit, ok := ast.Unparen(call.Args[0]).(*ast.FuncLit)
	if !ok {
		return nil, false
	}
	if _, ok := analysis.MethodOn(info, call, "dualspace/internal/bitset", "Set", "ForEach"); ok {
		return lit, true
	}
	return nil, false
}
