package reasonswitch_test

import (
	"testing"

	"dualspace/internal/analysis/analysistest"
	"dualspace/internal/analysis/reasonswitch"
)

func TestSwitches(t *testing.T) {
	analysistest.Run(t, reasonswitch.Analyzer, "switches")
}
