// Package reasonswitch keeps switches over the engine Reason taxonomy
// exhaustive. Every engine (core serial/parallel, FK-A/B, logspace replay)
// classifies precondition failures with core.Reason, and the application
// layers (itemsets border completion, coterie domination) branch on it to
// convert witnesses; a Reason added for a future engine must not fall
// through an existing switch silently. A switch is accepted when it
// either lists every declared Reason constant or has a default clause that
// handles the unknown case.
package reasonswitch

import (
	"go/ast"
	"go/constant"
	"go/types"
	"sort"
	"strings"

	"dualspace/internal/analysis"
)

const reasonPkg = "dualspace/internal/core"

// Analyzer is the reasonswitch rule.
var Analyzer = &analysis.Analyzer{
	Name: "reasonswitch",
	Doc:  "switches over core.Reason must be exhaustive or carry a default",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	info := pass.TypesInfo
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			sw, ok := n.(*ast.SwitchStmt)
			if !ok || sw.Tag == nil {
				return true
			}
			tagType := info.Types[sw.Tag].Type
			if !analysis.NamedFrom(tagType, reasonPkg, "Reason") {
				return true
			}
			named := types.Unalias(tagType).(*types.Named)
			check(pass, sw, named)
			return true
		})
	}
	return nil
}

func check(pass *analysis.Pass, sw *ast.SwitchStmt, reason *types.Named) {
	declared := declaredConstants(reason)
	covered := make(map[string]bool, len(declared))
	for _, clause := range sw.Body.List {
		cc := clause.(*ast.CaseClause)
		if cc.List == nil {
			return // default clause handles the tail
		}
		for _, e := range cc.List {
			tv, ok := pass.TypesInfo.Types[e]
			if !ok || tv.Value == nil || tv.Value.Kind() != constant.Int {
				return // non-constant case: coverage is not decidable, accept
			}
			covered[tv.Value.ExactString()] = true
		}
	}
	var missing []string
	for _, c := range declared {
		if !covered[constant.ToInt(c.Val()).ExactString()] {
			missing = append(missing, c.Name())
		}
	}
	if len(missing) > 0 {
		sort.Strings(missing)
		pass.Reportf(sw.Switch, "switch over core.Reason is not exhaustive: missing %s (add the cases or a default)", strings.Join(missing, ", "))
	}
}

// declaredConstants enumerates the package-level constants of the Reason
// type from its defining package (works both when core is the package
// under analysis and when it arrives through export data).
func declaredConstants(reason *types.Named) []*types.Const {
	scope := reason.Obj().Pkg().Scope()
	var out []*types.Const
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok {
			continue
		}
		if named, ok := types.Unalias(c.Type()).(*types.Named); ok && named.Obj() == reason.Obj() {
			out = append(out, c)
		}
	}
	return out
}
