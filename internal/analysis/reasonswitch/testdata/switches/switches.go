// Reason-switch fixture: exhaustiveness over the real core.Reason
// taxonomy (six constants as of PR 6).
package fixture

import "dualspace/internal/core"

func incomplete(r core.Reason) string {
	switch r { // want `missing ReasonGEdgeNotMinimal, ReasonNewTransversal`
	case core.ReasonDual:
		return "dual"
	case core.ReasonConstantMismatch:
		return "constant"
	case core.ReasonNotCrossIntersecting:
		return "cross"
	case core.ReasonHEdgeNotMinimal:
		return "hmin"
	}
	return ""
}

func withDefault(r core.Reason) string {
	switch r {
	case core.ReasonNewTransversal:
		return "witness"
	default:
		return "other"
	}
}

func exhaustive(r core.Reason) string {
	switch r {
	case core.ReasonDual:
		return "dual"
	case core.ReasonConstantMismatch:
		return "constant"
	case core.ReasonNotCrossIntersecting:
		return "cross"
	case core.ReasonHEdgeNotMinimal, core.ReasonGEdgeNotMinimal:
		return "minimality"
	case core.ReasonNewTransversal:
		return "witness"
	}
	return ""
}

func notAReasonSwitch(x int) string {
	switch x {
	case 1:
		return "one"
	}
	return ""
}

func suppressed(r core.Reason) string {
	switch r { //dual:allow(reasonswitch: only the verdict cases matter here)
	case core.ReasonDual:
		return "dual"
	}
	return ""
}
