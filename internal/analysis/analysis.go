// Package analysis is a small, dependency-free substitute for the parts of
// golang.org/x/tools/go/analysis that dualvet needs. The repo's hot-path
// invariants (allocation-free steady state, per-walker scratch ownership,
// ctx polled at every tree node, engine-keyed caches, shard locks never held
// across a decision) are enforced by repo-specific analyzers built on this
// package; cmd/dualvet is the multichecker driver.
//
// The API deliberately mirrors x/tools so the analyzers can be ported to the
// upstream framework verbatim if the dependency ever becomes available: an
// Analyzer owns a Run function over a Pass, the Pass carries one
// type-checked package, and diagnostics are reported with Reportf.
//
// Suppression: a diagnostic is dropped when the flagged line, or the line
// directly above it, carries a //dual:allow(rule) comment naming the
// analyzer (see annotations.go). Suppressions are handled centrally here so
// individual analyzers never need to think about them.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer describes one invariant checker.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //dual:allow(name) suppression comments.
	Name string
	// Doc is a one-paragraph description of the enforced invariant.
	Doc string
	// Run inspects the package and reports findings via pass.Reportf.
	Run func(pass *Pass) error
}

// Pass carries one type-checked package through an analyzer run.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags []Diagnostic
}

// Diagnostic is one finding, positioned and attributed to its analyzer.
type Diagnostic struct {
	Analyzer string         `json:"analyzer"`
	Pos      token.Position `json:"pos"`
	Message  string         `json:"message"`
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Run applies each analyzer to each package, filters suppressed findings,
// and returns the surviving diagnostics sorted by position.
func Run(analyzers []*Analyzer, pkgs []*Package) ([]Diagnostic, error) {
	var out []Diagnostic
	for _, pkg := range pkgs {
		allow := collectAllows(pkg.Fset, pkg.Files)
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.ImportPath, err)
			}
			for _, d := range pass.diags {
				if allow.suppressed(a.Name, d.Pos) {
					continue
				}
				out = append(out, d)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Pos, out[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return out[i].Analyzer < out[j].Analyzer
	})
	return out, nil
}
