// Loop-polling fixture: rule 1 — loops with calls inside ctx-taking
// functions must reference ctx.
package fixture

import "context"

type node struct{ children []*node }

func visit(*node) {}

func unpolled(ctx context.Context, nodes []*node) error { // ctx param, never polled in loop
	for _, n := range nodes { // want `loop with calls never references ctx`
		visit(n)
	}
	return ctx.Err()
}

func polledDirectly(ctx context.Context, nodes []*node) error {
	for _, n := range nodes {
		if err := ctx.Err(); err != nil {
			return err
		}
		visit(n)
	}
	return nil
}

func delegated(ctx context.Context, nodes []*node) error {
	for _, n := range nodes {
		if err := visitContext(ctx, n); err != nil { // passing ctx transfers the obligation
			return err
		}
	}
	return nil
}

func visitContext(ctx context.Context, n *node) error { return ctx.Err() }

func outerPollCoversInner(ctx context.Context, nodes []*node) {
	for _, n := range nodes {
		_ = ctx.Err()
		for _, c := range n.children { // inner loop rides the outer poll
			visit(c)
		}
	}
}

func arithmeticOnly(ctx context.Context, xs []int) int {
	total := 0
	for _, x := range xs { // call-free loop: clean
		total += x
	}
	return total
}

func smallConstant(ctx context.Context, nodes []*node) {
	for i := 0; i < 2; i++ { // trivially bounded: clean
		visit(nodes[i])
	}
	for _, n := range []*node{nodes[0], nodes[1]} { // small literal range: clean
		visit(n)
	}
}

func noCtxParam(nodes []*node) {
	for _, n := range nodes { // no ctx in signature: rule does not apply
		visit(n)
	}
}

func suppressed(ctx context.Context, nodes []*node) {
	for _, n := range nodes { //dual:allow(ctxpoll: O(1)-amortized bookkeeping)
		visit(n)
	}
}

func unboundedInnerLoop(ctx context.Context, nodes []*node) {
	for i := 0; i < 2; i++ {
		for _, n := range nodes { // want `loop with calls never references ctx`
			visit(n)
		}
	}
}

// Resilience code shapes (PR 9): retry/backoff loops and drain sweeps are
// exactly the loops that must stay cancellable — a retry loop that ignores
// its context outlives the caller that gave up on it.

func retryIgnoresCtx(ctx context.Context, attempt func() error) error { // backoff loop, ctx never polled
	var err error
	for i := 0; i < 64; i++ { // want `loop with calls never references ctx`
		if err = attempt(); err == nil {
			return nil
		}
	}
	return err
}

func retryPollsCtx(ctx context.Context, attempt func() error) error {
	var err error
	for i := 0; i < 64; i++ {
		if cerr := ctx.Err(); cerr != nil {
			return cerr
		}
		if err = attempt(); err == nil {
			return nil
		}
	}
	return err
}

func drainSweepIgnoresCtx(ctx context.Context, parked []func()) {
	for _, shed := range parked { // want `loop with calls never references ctx`
		shed()
	}
}

func drainSweepDelegates(ctx context.Context, parked []func(context.Context)) {
	for _, shed := range parked { // passing ctx transfers the obligation
		shed(ctx)
	}
}
