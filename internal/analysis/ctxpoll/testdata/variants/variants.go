// Variant fixture: rule 2 — ctx-holding callers in the serving/app layers
// must use *Context/*With siblings instead of the legacy façade.
package fixture

import "context"

func Work() error                               { return nil }
func WorkContext(ctx context.Context) error     { return ctx.Err() }
func Plain() error                              { return nil }
func Mine() error                               { return nil }
func MineWith(ctx context.Context, n int) error { return ctx.Err() }

type Engine struct{}

func (e *Engine) Solve() error                           { return nil }
func (e *Engine) SolveContext(ctx context.Context) error { return ctx.Err() }

func handler(ctx context.Context, e *Engine) error {
	if err := Work(); err != nil { // want `call WorkContext instead of Work`
		return err
	}
	if err := Mine(); err != nil { // want `call MineWith instead of Mine`
		return err
	}
	if err := e.Solve(); err != nil { // want `call SolveContext instead of Solve`
		return err
	}
	if err := Plain(); err != nil { // no variant exists: clean
		return err
	}
	return WorkContext(ctx)
}

func legacyCaller(e *Engine) error {
	// No ctx in scope: the legacy façade is the right call.
	if err := Work(); err != nil {
		return err
	}
	return e.Solve()
}

func suppressedVariant(ctx context.Context) error {
	return Work() //dual:allow(ctxpoll: fire-and-forget cleanup, must not be cancelled)
}
