package ctxpoll_test

import (
	"testing"

	"dualspace/internal/analysis/analysistest"
	"dualspace/internal/analysis/ctxpoll"
)

func TestLoops(t *testing.T) {
	analysistest.Run(t, ctxpoll.Analyzer, "loops")
}

func TestVariants(t *testing.T) {
	analysistest.Run(t, ctxpoll.Analyzer, "variants")
}
