// Package ctxpoll enforces the cancellation invariant introduced in PR 2:
// every decision walk polls its context at every tree node, so a cancelled
// request stops within one node rather than one decomposition. Two rules:
//
//  1. In any function that takes a context.Context, each outermost loop
//     that performs calls must reference the context somewhere in its body
//     — either by polling it directly (ctx.Err, select on ctx.Done) or by
//     passing it to the work it calls, which then owns the obligation.
//     Loops with a small constant trip count and call-free arithmetic
//     loops (the bitset word loops) are exempt.
//
//  2. In the serving and application layers (internal/service,
//     internal/batch, internal/itemsets, internal/keys, internal/coterie,
//     and the cmd/ binaries), a function that has a context in scope must
//     not call a legacy non-context entry point when the same package
//     declares a *Context or *With variant: the legacy façade is for
//     contexts-free callers only, and calling it from a request path
//     silently severs cancellation.
//
// Intentional exceptions carry //dual:allow(ctxpoll: reason).
package ctxpoll

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"

	"dualspace/internal/analysis"
)

// Analyzer is the ctxpoll rule.
var Analyzer = &analysis.Analyzer{
	Name: "ctxpoll",
	Doc:  "context-taking functions must poll ctx in loops and call *Context/*With variants",
	Run:  run,
}

// smallLoopMax is the largest literal trip count considered trivially
// bounded for rule 1.
const smallLoopMax = 8

// variantCallerPkgs are the package-path prefixes rule 2 applies to.
var variantCallerPkgs = []string{
	"dualspace/internal/service",
	"dualspace/internal/batch",
	"dualspace/internal/itemsets",
	"dualspace/internal/keys",
	"dualspace/internal/coterie",
	"dualspace/cmd/",
	"dualspace/fixture/", // analysistest packages opt in via their path
}

func run(pass *analysis.Pass) error {
	checkVariants := false
	for _, prefix := range variantCallerPkgs {
		if strings.HasPrefix(pass.Pkg.Path(), prefix) || pass.Pkg.Path() == strings.TrimSuffix(prefix, "/") {
			checkVariants = true
		}
	}
	analysis.FuncBodies(pass.Files, func(decl *ast.FuncDecl, body *ast.BlockStmt) {
		ctx := analysis.CtxParam(pass.TypesInfo, decl)
		if ctx == nil {
			return
		}
		checkLoops(pass, ctx, body)
		if checkVariants {
			checkVariantCalls(pass, decl, body)
		}
	})
	return nil
}

// checkLoops flags outermost calling loops that never reference ctx.
// Nested loops are covered by their outermost ancestor: a reference
// anywhere inside the outer body bounds the poll interval by one outer
// iteration, which is the granularity the kernel promises ("every tree
// node", not every word of every bitset).
func checkLoops(pass *analysis.Pass, ctx types.Object, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		var loopBody *ast.BlockStmt
		var pos token.Pos
		switch loop := n.(type) {
		case *ast.ForStmt:
			if smallConstLoop(loop) {
				return true // descend: an inner loop may still be unbounded
			}
			loopBody, pos = loop.Body, loop.For
		case *ast.RangeStmt:
			if smallRange(loop) {
				return true
			}
			loopBody, pos = loop.Body, loop.For
		case *ast.FuncLit:
			// A literal runs on its own schedule (goroutine, callback);
			// its loops answer to whatever context it closes over, and
			// rule 1 only audits the declared parameter's own frame.
			return false
		default:
			return true
		}
		if !hasCalls(loopBody) {
			return true // arithmetic-only loop; descend for nested ones
		}
		if analysis.UsesObject(pass.TypesInfo, loopBody, ctx) {
			return false // polled (or delegated) at this granularity
		}
		pass.Reportf(pos, "loop with calls never references ctx; poll ctx (or call a *Context variant) at every iteration")
		return false
	})
}

func smallConstLoop(loop *ast.ForStmt) bool {
	cond, ok := loop.Cond.(*ast.BinaryExpr)
	if !ok || (cond.Op != token.LSS && cond.Op != token.LEQ) {
		return false
	}
	lit, ok := cond.Y.(*ast.BasicLit)
	if !ok || lit.Kind != token.INT {
		return false
	}
	n, err := strconv.Atoi(lit.Value)
	return err == nil && n <= smallLoopMax
}

// smallRange reports whether loop ranges over a composite literal with at
// most smallLoopMax elements (e.g. the portfolio's two-engine race
// launcher) — a trivially bounded trip count.
func smallRange(loop *ast.RangeStmt) bool {
	lit, ok := ast.Unparen(loop.X).(*ast.CompositeLit)
	return ok && len(lit.Elts) <= smallLoopMax
}

func hasCalls(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch fun := call.Fun.(type) {
		case *ast.Ident:
			if _, isBuiltin := builtinNames[fun.Name]; isBuiltin {
				return true
			}
		case *ast.ArrayType, *ast.MapType:
			return true // conversion
		}
		found = true
		return false
	})
	return found
}

var builtinNames = map[string]struct{}{
	"len": {}, "cap": {}, "append": {}, "copy": {}, "delete": {}, "min": {},
	"max": {}, "make": {}, "new": {}, "panic": {}, "print": {}, "println": {},
	"clear": {}, "complex": {}, "real": {}, "imag": {},
}

// checkVariantCalls flags calls to legacy entry points that have a
// *Context/*With sibling, from functions that hold a ctx.
func checkVariantCalls(pass *analysis.Pass, decl *ast.FuncDecl, body *ast.BlockStmt) {
	info := pass.TypesInfo
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		obj := analysis.Callee(info, call)
		if obj == nil {
			return true
		}
		fn, ok := obj.(*types.Func)
		if !ok || !strings.HasPrefix(analysis.PkgPath(fn), "dualspace/") {
			return true
		}
		if !fn.Exported() {
			return true // the façade/variant convention is exported API surface
		}
		if fn == info.Defs[decl.Name] {
			return true // self-recursion
		}
		sig := fn.Type().(*types.Signature)
		if takesContext(sig) {
			return true // already a context-aware call
		}
		if variant := contextVariant(fn); variant != "" {
			pass.Reportf(call.Pos(), "call %s instead of %s: the caller has a ctx and the legacy entry point severs cancellation", variant, fn.Name())
		}
		return true
	})
}

func takesContext(sig *types.Signature) bool {
	for i := 0; i < sig.Params().Len(); i++ {
		if analysis.IsContextType(sig.Params().At(i).Type()) {
			return true
		}
	}
	return false
}

// contextVariant returns the name of a *Context/*With sibling of fn that
// itself takes a context.Context — a package-level function next to a
// package-level fn, or a method on the same receiver type for methods.
func contextVariant(fn *types.Func) string {
	sig := fn.Type().(*types.Signature)
	for _, suffix := range []string{"Context", "With"} {
		name := fn.Name() + suffix
		var alt types.Object
		if recv := sig.Recv(); recv != nil {
			t := recv.Type()
			if p, ok := t.(*types.Pointer); ok {
				t = p.Elem()
			}
			named, ok := types.Unalias(t).(*types.Named)
			if !ok {
				continue
			}
			for m := 0; m < named.NumMethods(); m++ {
				if named.Method(m).Name() == name {
					alt = named.Method(m)
					break
				}
			}
		} else if fn.Pkg() != nil {
			alt = fn.Pkg().Scope().Lookup(name)
		}
		altFn, ok := alt.(*types.Func)
		if ok && takesContext(altFn.Type().(*types.Signature)) {
			return name
		}
	}
	return ""
}
