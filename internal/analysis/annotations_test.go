package analysis

import (
	"reflect"
	"strings"
	"testing"
)

func TestParseAllow(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"//dual:allow(allocfree)", []string{"allocfree"}},
		{"//dual:allow(allocfree: cold error path)", []string{"allocfree"}},
		{"//dual:allow(allocfree, ctxpoll)", []string{"allocfree", "ctxpoll"}},
		{"//dual:allow(allocfree, ctxpoll: shared reason)", []string{"allocfree", "ctxpoll"}},
		{"  //dual:allow(bitsetalias)  ", []string{"bitsetalias"}},
		{"//dual:allow(rule-with-dash_and_0)", []string{"rule-with-dash_and_0"}},
		// Reasons may themselves contain colons and parens-free prose.
		{"//dual:allow(lockscope: guards O(1) map op: see DESIGN §9)", []string{"lockscope"}},

		{"//dual:allow()", nil},
		{"//dual:allow(, )", nil},
		{"//dual:allow(UPPER)", nil},
		{"//dual:allow(rule", nil},
		{"//dual:allocfree", nil},
		{"// dual:allow(rule)", nil},
		{"//dual:allow(a b)", nil},
		{"", nil},
	}
	for _, c := range cases {
		if got := ParseAllow(c.in); !reflect.DeepEqual(got, c.want) {
			t.Errorf("ParseAllow(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

// FuzzParseAllow pins the parser against panics and grammar drift: any
// accepted rule list must round-trip through the suppression index
// unchanged, and rule names must stay in the lowercase identifier
// alphabet. The seed corpus is checked in under testdata/fuzz and replayed
// by the CI fuzz job.
func FuzzParseAllow(f *testing.F) {
	f.Add("//dual:allow(allocfree)")
	f.Add("//dual:allow(allocfree, ctxpoll: reason text)")
	f.Add("//dual:allow(:)")
	f.Add("//dual:allow((nested))")
	f.Add("//dual:allow\x00(rule)")
	f.Add(strings.Repeat("//dual:allow(", 50))
	f.Fuzz(func(t *testing.T, text string) {
		rules := ParseAllow(text)
		for _, r := range rules {
			if r == "" {
				t.Fatalf("ParseAllow(%q) returned an empty rule", text)
			}
			for _, c := range r {
				ok := c == '-' || c == '_' || (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9')
				if !ok {
					t.Fatalf("ParseAllow(%q) accepted rule %q with invalid rune %q", text, r, c)
				}
			}
		}
	})
}
