package analysis

import (
	"go/ast"
	"go/types"
)

// Type-matching helpers shared by the analyzers. Packages are compared by
// import path, never by *types.Package identity: each target package is
// checked independently, so the same dependency can appear as distinct
// package objects across passes.

// PkgPath returns the import path of obj's package, or "" for builtins.
func PkgPath(obj types.Object) string {
	if obj == nil || obj.Pkg() == nil {
		return ""
	}
	return obj.Pkg().Path()
}

// NamedFrom reports whether t (after stripping pointers and aliases) is the
// named type pkgPath.name.
func NamedFrom(t types.Type, pkgPath, name string) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == name && PkgPath(obj) == pkgPath
}

// Callee resolves the called object of a call expression (function, method,
// or builtin), or nil for indirect calls through non-named expressions.
func Callee(info *types.Info, call *ast.CallExpr) types.Object {
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return info.Uses[fn]
	case *ast.SelectorExpr:
		return info.Uses[fn.Sel]
	}
	return nil
}

// MethodOn reports whether call invokes a method with the given name whose
// receiver type is pkgPath.typeName, and returns the receiver expression.
func MethodOn(info *types.Info, call *ast.CallExpr, pkgPath, typeName, method string) (recv ast.Expr, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel || sel.Sel.Name != method {
		return nil, false
	}
	selection, isMethod := info.Selections[sel]
	if !isMethod || selection.Kind() != types.MethodVal {
		return nil, false
	}
	if !NamedFrom(selection.Recv(), pkgPath, typeName) {
		return nil, false
	}
	return sel.X, true
}

// IsContextType reports whether t is context.Context.
func IsContextType(t types.Type) bool {
	return NamedFrom(t, "context", "Context")
}

// CtxParam returns the object of fn's context.Context parameter, or nil.
func CtxParam(info *types.Info, fn *ast.FuncDecl) types.Object {
	if fn.Type.Params == nil {
		return nil
	}
	for _, field := range fn.Type.Params.List {
		for _, name := range field.Names {
			obj := info.Defs[name]
			if obj != nil && IsContextType(obj.Type()) {
				return obj
			}
		}
	}
	return nil
}

// UsesObject reports whether node references obj anywhere.
func UsesObject(info *types.Info, node ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(node, func(n ast.Node) bool {
		if found {
			return false
		}
		if id, ok := n.(*ast.Ident); ok && info.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}

// FuncBodies walks every function declaration and function literal in the
// files, calling visit with the enclosing declaration (nil for literals at
// package level) and the body.
func FuncBodies(files []*ast.File, visit func(decl *ast.FuncDecl, body *ast.BlockStmt)) {
	for _, f := range files {
		for _, d := range f.Decls {
			if fn, ok := d.(*ast.FuncDecl); ok && fn.Body != nil {
				visit(fn, fn.Body)
			}
		}
	}
}
