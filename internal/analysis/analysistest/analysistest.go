// Package analysistest runs an analyzer over testdata fixture packages and
// checks reported diagnostics against // want comments, mirroring
// golang.org/x/tools/go/analysis/analysistest closely enough that the
// fixtures would work under the upstream harness:
//
//	x.DiffInto(x, dst) // want `aliased sources`
//
// Each `// want` comment carries one or more backquoted regular
// expressions; every diagnostic on that line must match one, and every
// expectation must be matched by exactly one diagnostic. A fixture line
// with no want comment expects no diagnostics — the no-false-positive
// fixtures are just annotation-free files mirroring real kernel shapes.
//
// Fixtures are real packages: they import the module's own internals
// (dualspace/internal/bitset, …), which the loader resolves from compiled
// export data, so the type-driven matching under test is exercised exactly
// as in production runs.
package analysistest

import (
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"sync"
	"testing"

	"dualspace/internal/analysis"
)

var (
	exportsOnce sync.Once
	exports     map[string]string
	exportsErr  error
	moduleRoot  string
)

// depPatterns lists the package universe fixtures may import from. The
// module's own packages pull in their stdlib dependency closure, and the
// extra stdlib names cover imports only fixtures use.
var depPatterns = []string{"./...", "context", "fmt", "sync", "strings", "errors"}

func load(t *testing.T) map[string]string {
	t.Helper()
	exportsOnce.Do(func() {
		moduleRoot, exportsErr = analysis.ModuleRoot(".")
		if exportsErr != nil {
			return
		}
		exports, exportsErr = analysis.ExportIndex(moduleRoot, depPatterns...)
	})
	if exportsErr != nil {
		t.Fatalf("loading export index: %v", exportsErr)
	}
	return exports
}

// Run applies the analyzer to the fixture package in dir (relative to the
// test's testdata directory) and verifies the // want expectations.
func Run(t *testing.T, a *analysis.Analyzer, dir string) {
	t.Helper()
	exp := load(t)

	fixdir := filepath.Join("testdata", dir)
	entries, err := os.ReadDir(fixdir)
	if err != nil {
		t.Fatalf("reading fixture dir: %v", err)
	}
	var files []string
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".go") {
			abs, err := filepath.Abs(filepath.Join(fixdir, e.Name()))
			if err != nil {
				t.Fatal(err)
			}
			files = append(files, abs)
		}
	}
	if len(files) == 0 {
		t.Fatalf("no fixture files in %s", fixdir)
	}
	sort.Strings(files)

	fset := token.NewFileSet()
	pkg, err := analysis.CheckFiles(fset, "dualspace/fixture/"+dir, files, exp)
	if err != nil {
		t.Fatalf("type-checking fixture: %v", err)
	}
	diags, err := analysis.Run([]*analysis.Analyzer{a}, []*analysis.Package{pkg})
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}

	wants := collectWants(t, files)
	matched := make([]bool, len(wants))
	for _, d := range diags {
		ok := false
		for i, w := range wants {
			if matched[i] || w.file != d.Pos.Filename || w.line != d.Pos.Line {
				continue
			}
			if w.re.MatchString(d.Message) {
				matched[i] = true
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("%s: unexpected diagnostic: %s", relFile(d.Pos.Filename), d)
		}
	}
	for i, w := range wants {
		if !matched[i] {
			t.Errorf("%s:%d: no diagnostic matching %q", relFile(w.file), w.line, w.re)
		}
	}
}

type want struct {
	file string
	line int
	re   *regexp.Regexp
}

var wantRE = regexp.MustCompile("// want( `[^`]*`)+\\s*$")
var exprRE = regexp.MustCompile("`([^`]*)`")

func collectWants(t *testing.T, files []string) []want {
	t.Helper()
	var out []want
	for _, file := range files {
		data, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		abs, err := filepath.Abs(file)
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			m := wantRE.FindString(line)
			if m == "" {
				continue
			}
			for _, g := range exprRE.FindAllStringSubmatch(m, -1) {
				re, err := regexp.Compile(g[1])
				if err != nil {
					t.Fatalf("%s:%d: bad want regexp: %v", file, i+1, err)
				}
				out = append(out, want{file: abs, line: i + 1, re: re})
			}
		}
	}
	return out
}

func relFile(abs string) string {
	if rel, err := filepath.Rel(moduleRoot, abs); err == nil {
		return rel
	}
	return abs
}
