// Package gate implements dualvet's two build-time gates, complementing
// the AST analyzers with facts only the compiler knows:
//
//   - BCE: `go build -gcflags=-d=ssa/check_bce` lists every bounds check
//     the SSA backend could not eliminate. The gate normalizes those
//     positions to enclosing functions and diffs the function set against
//     a checked-in allowlist, so a refactor that re-introduces a bounds
//     check into a hot bitset/core function fails CI while line-number
//     churn inside already-listed functions does not.
//
//   - Escape: `go build -gcflags=-m` reports heap escapes. The gate keeps
//     the reports that fall inside //dual:allocfree functions and fails on
//     any not present in the allowlist (keyed function:variable, so
//     re-orderings don't churn the list).
//
// Allowlist format (both gates): one entry per line, '#' comments and
// blank lines ignored.
package gate

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"dualspace/internal/analysis"
)

// Finding is one gate violation.
type Finding struct {
	Entry string // the allowlist key that would admit it
	Pos   string // representative file:line for the report
}

// ReadAllowlist parses an allowlist file; a missing file is an empty list.
func ReadAllowlist(path string) (map[string]bool, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return map[string]bool{}, nil
	}
	if err != nil {
		return nil, err
	}
	out := map[string]bool{}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		out[line] = true
	}
	return out, nil
}

// funcIndex locates the enclosing function of a file:line position.
type funcIndex struct {
	fset  *token.FileSet
	funcs []funcSpan
}

type funcSpan struct {
	name       string // pkgpath.Recv.Name or pkgpath.Name
	file       string
	start, end int
	allocFree  bool
}

func buildFuncIndex(dir string, pkgs []pkgFiles) (*funcIndex, error) {
	idx := &funcIndex{fset: token.NewFileSet()}
	for _, p := range pkgs {
		for _, name := range p.files {
			full := filepath.Join(p.dir, name)
			f, err := parser.ParseFile(idx.fset, full, nil, parser.ParseComments)
			if err != nil {
				return nil, err
			}
			for _, d := range f.Decls {
				fn, ok := d.(*ast.FuncDecl)
				if !ok || fn.Body == nil {
					continue
				}
				start := idx.fset.Position(fn.Pos())
				end := idx.fset.Position(fn.End())
				idx.funcs = append(idx.funcs, funcSpan{
					name:      p.importPath + "." + funcName(fn),
					file:      start.Filename,
					start:     start.Line,
					end:       end.Line,
					allocFree: analysis.IsAllocFree(fn),
				})
			}
		}
	}
	return idx, nil
}

func funcName(fn *ast.FuncDecl) string {
	if fn.Recv == nil || len(fn.Recv.List) == 0 {
		return fn.Name.Name
	}
	t := fn.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if idx, ok := t.(*ast.IndexExpr); ok { // generic receiver
		t = idx.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name + "." + fn.Name.Name
	}
	return fn.Name.Name
}

// lookup returns the function containing file:line, matching on absolute
// or dir-relative file paths.
func (idx *funcIndex) lookup(dir, file string, line int) *funcSpan {
	if !filepath.IsAbs(file) {
		file = filepath.Join(dir, file)
	}
	for i := range idx.funcs {
		f := &idx.funcs[i]
		if f.file == file && line >= f.start && line <= f.end {
			return f
		}
	}
	return nil
}

type pkgFiles struct {
	importPath string
	dir        string
	files      []string
}

func listPkgFiles(dir string, patterns []string) ([]pkgFiles, error) {
	// \x1f (unit separator) cannot appear in import paths or file names;
	// NUL would be rejected by execve.
	args := append([]string{"list", "-f", "{{.ImportPath}}\x1f{{.Dir}}\x1f{{range .GoFiles}}{{.}} {{end}}"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list: %v\n%s", err, stderr.String())
	}
	var out []pkgFiles
	for _, line := range strings.Split(strings.TrimSpace(stdout.String()), "\n") {
		parts := strings.SplitN(line, "\x1f", 3)
		if len(parts) != 3 {
			continue
		}
		out = append(out, pkgFiles{importPath: parts[0], dir: parts[1], files: strings.Fields(parts[2])})
	}
	return out, nil
}

func compilerOutput(dir, gcflags string, patterns []string) (string, error) {
	args := append([]string{"build", "-gcflags=" + gcflags}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var out bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &out
	if err := cmd.Run(); err != nil {
		return "", fmt.Errorf("go build -gcflags=%s: %v\n%s", gcflags, err, out.String())
	}
	return out.String(), nil
}

// parseDiagLine splits "file.go:12:3: message" into its parts.
func parseDiagLine(line string) (file string, lineNo int, msg string, ok bool) {
	parts := strings.SplitN(line, ":", 4)
	if len(parts) != 4 {
		return "", 0, "", false
	}
	n, err := strconv.Atoi(parts[1])
	if err != nil {
		return "", 0, "", false
	}
	return parts[0], n, strings.TrimSpace(parts[3]), true
}

// BCE runs the bounds-check-elimination gate over patterns, returning the
// violations (functions with residual bounds checks not in the allowlist)
// and the stale allowlist entries that no longer fire.
func BCE(dir string, patterns []string, allow map[string]bool) (violations []Finding, stale []string, err error) {
	pkgs, err := listPkgFiles(dir, patterns)
	if err != nil {
		return nil, nil, err
	}
	idx, err := buildFuncIndex(dir, pkgs)
	if err != nil {
		return nil, nil, err
	}
	out, err := compilerOutput(dir, "-d=ssa/check_bce", patterns)
	if err != nil {
		return nil, nil, err
	}
	seen := map[string]string{} // func → first pos
	for _, line := range strings.Split(out, "\n") {
		if !strings.Contains(line, "Found Is") { // IsInBounds / IsSliceInBounds
			continue
		}
		file, lineNo, _, ok := parseDiagLine(line)
		if !ok {
			continue
		}
		fn := idx.lookup(dir, file, lineNo)
		if fn == nil {
			continue
		}
		if _, dup := seen[fn.name]; !dup {
			seen[fn.name] = fmt.Sprintf("%s:%d", file, lineNo)
		}
	}
	for name, pos := range seen {
		if !allow[name] {
			violations = append(violations, Finding{Entry: name, Pos: pos})
		}
	}
	for name := range allow {
		if _, still := seen[name]; !still {
			stale = append(stale, name)
		}
	}
	sortFindings(violations)
	sort.Strings(stale)
	return violations, stale, nil
}

// Escape runs the escape-analysis gate: heap escapes inside
// //dual:allocfree functions must be allowlisted.
func Escape(dir string, patterns []string, allow map[string]bool) (violations []Finding, stale []string, err error) {
	pkgs, err := listPkgFiles(dir, patterns)
	if err != nil {
		return nil, nil, err
	}
	idx, err := buildFuncIndex(dir, pkgs)
	if err != nil {
		return nil, nil, err
	}
	out, err := compilerOutput(dir, "-m", patterns)
	if err != nil {
		return nil, nil, err
	}
	seen := map[string]string{}
	for _, line := range strings.Split(out, "\n") {
		var what string
		switch {
		case strings.Contains(line, "moved to heap:"):
			what = strings.TrimSpace(line[strings.Index(line, "moved to heap:")+len("moved to heap:"):])
		case strings.Contains(line, "escapes to heap"):
			file, lineNo, msg, ok := parseDiagLine(line)
			if !ok {
				continue
			}
			fn := idx.lookup(dir, file, lineNo)
			if fn == nil || !fn.allocFree {
				continue
			}
			entry := fn.name + ": " + strings.TrimSuffix(msg, " escapes to heap")
			if _, dup := seen[entry]; !dup {
				seen[entry] = fmt.Sprintf("%s:%d", file, lineNo)
			}
			continue
		default:
			continue
		}
		file, lineNo, _, ok := parseDiagLine(line)
		if !ok {
			continue
		}
		fn := idx.lookup(dir, file, lineNo)
		if fn == nil || !fn.allocFree {
			continue
		}
		entry := fn.name + ": moved to heap: " + what
		if _, dup := seen[entry]; !dup {
			seen[entry] = fmt.Sprintf("%s:%d", file, lineNo)
		}
	}
	for entry, pos := range seen {
		if !allow[entry] {
			violations = append(violations, Finding{Entry: entry, Pos: pos})
		}
	}
	for entry := range allow {
		if _, still := seen[entry]; !still {
			stale = append(stale, entry)
		}
	}
	sortFindings(violations)
	sort.Strings(stale)
	return violations, stale, nil
}

func sortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool { return fs[i].Entry < fs[j].Entry })
}
