package analysis

import (
	"go/ast"
	"strings"
	"testing"
)

// TestLoadModulePackages exercises the export-data loader on real module
// packages: parsed syntax, resolved types, and cross-package references.
func TestLoadModulePackages(t *testing.T) {
	root, err := ModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := Load(root, "./internal/bitset", "./internal/engine")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 2 {
		t.Fatalf("got %d packages, want 2", len(pkgs))
	}
	byPath := map[string]*Package{}
	for _, p := range pkgs {
		byPath[p.ImportPath] = p
		if len(p.Files) == 0 || p.Types == nil || p.Info == nil {
			t.Fatalf("%s: incomplete package", p.ImportPath)
		}
	}
	eng := byPath["dualspace/internal/engine"]
	if eng == nil {
		t.Fatal("engine package missing")
	}
	// Cross-package types must resolve: find a selector whose object lives
	// in another dualspace package (engine leans on core and hypergraph).
	foundCross := false
	for _, f := range eng.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || foundCross {
				return !foundCross
			}
			if obj := eng.Info.Uses[sel.Sel]; obj != nil && obj.Pkg() != nil &&
				strings.HasPrefix(obj.Pkg().Path(), "dualspace/") && obj.Pkg().Path() != eng.ImportPath {
				foundCross = true
			}
			return true
		})
	}
	if !foundCross {
		t.Error("no cross-package reference resolved through export data")
	}
}

// TestRunSuppression checks the end-to-end suppression path with a
// throwaway analyzer that flags every function declaration.
func TestRunSuppression(t *testing.T) {
	root, err := ModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := Load(root, "./internal/analysis/gate")
	if err != nil {
		t.Fatal(err)
	}
	flagAll := &Analyzer{
		Name: "flagall",
		Doc:  "test analyzer",
		Run: func(pass *Pass) error {
			for _, f := range pass.Files {
				for _, d := range f.Decls {
					if fn, ok := d.(*ast.FuncDecl); ok {
						pass.Reportf(fn.Pos(), "decl %s", fn.Name.Name)
					}
				}
			}
			return nil
		},
	}
	diags, err := Run([]*Analyzer{flagAll}, pkgs)
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) == 0 {
		t.Fatal("flag-all analyzer reported nothing")
	}
	for i := 1; i < len(diags); i++ {
		a, b := diags[i-1].Pos, diags[i].Pos
		if a.Filename > b.Filename || (a.Filename == b.Filename && a.Line > b.Line) {
			t.Fatalf("diagnostics out of order: %v before %v", diags[i-1], diags[i])
		}
	}
}
