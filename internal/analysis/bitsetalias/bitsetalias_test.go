package bitsetalias_test

import (
	"testing"

	"dualspace/internal/analysis/analysistest"
	"dualspace/internal/analysis/bitsetalias"
)

func TestAliasing(t *testing.T) {
	analysistest.Run(t, bitsetalias.Analyzer, "aliasing")
}

func TestPool(t *testing.T) {
	analysistest.Run(t, bitsetalias.Analyzer, "pool")
}

func TestNoFalsePositives(t *testing.T) {
	analysistest.Run(t, bitsetalias.Analyzer, "nofp")
}
