// Aliasing fixture: destination-style ops where two participants are the
// same expression.
package fixture

import "dualspace/internal/bitset"

func aliasing(a, b, dst bitset.Set) {
	a.IntersectInto(b, dst) // distinct participants: clean
	a.IntersectInto(a, dst) // want `aliased sources`
	a.DiffInto(a, dst)      // want `aliased sources`
	a.UnionInto(b, a)       // want `destination aliases source`
	a.DiffInto(b, b)        // want `destination aliases source`
	dst.CopyFrom(dst)       // want `destination aliases source`
	a.ComplementInto(a)     // want `destination aliases source`
}

func accumulate(edges []bitset.Set, acc bitset.Set) {
	for _, e := range edges {
		e.UnionInto(acc, acc) //dual:allow(bitsetalias: in-place accumulation)
	}
	// The comment-above form suppresses the next line too.
	//dual:allow(bitsetalias: in-place accumulation)
	acc.UnionInto(acc, acc)
}

type holder struct{ slot bitset.Set }

func (h *holder) scratch() bitset.Set { return h.slot }

func throughCalls(a, b bitset.Set, h *holder) {
	// Call results cannot be proven distinct syntactically; never flagged.
	a.IntersectInto(b, h.scratch())
	h.scratch().UnionInto(a, b)
}
