// No-false-positive fixture mirroring real kernel shapes: a walker-style
// projection loop over distinct scratch fields, and Berge-style pool use
// where extensions transfer into the next generation. Nothing here may be
// flagged.
package fixture

import "dualspace/internal/bitset"

type scratch struct {
	gProj, tmp, wit, hsSet, notCont bitset.Set
	pool                            *bitset.Pool
}

func (sc *scratch) project(edges []bitset.Set, s bitset.Set) {
	for _, e := range edges {
		e.IntersectInto(s, sc.gProj)
		sc.gProj.DiffInto(sc.tmp, sc.wit)
		sc.hsSet.DiffInto(sc.notCont, sc.tmp)
	}
	sc.wit.CopyFrom(s)
	s.ComplementInto(sc.tmp)
}

func (sc *scratch) berge(current []bitset.Set, e bitset.Set) []bitset.Set {
	var next []bitset.Set
	for _, r := range current {
		if r.Intersects(e) {
			next = append(next, r)
			continue
		}
		e.ForEach(func(v int) bool {
			c := sc.pool.Get()
			c.CopyFrom(r)
			c.Add(v)
			next = append(next, c)
			return true
		})
		sc.pool.Put(r)
	}
	return next
}

func (sc *scratch) borrowed(f func(bitset.Set)) {
	s := sc.pool.Get()
	defer sc.pool.Put(s)
	f(s)
}
