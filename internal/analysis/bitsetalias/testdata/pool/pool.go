// Pool fixture: Get/Put pairing across return paths.
package fixture

import "dualspace/internal/bitset"

func use(bitset.Set) {}

func leakEarlyReturn(p *bitset.Pool, cond bool) {
	s := p.Get() // want `not Put on every path`
	use(s)
	if cond {
		return // leaks s
	}
	p.Put(s)
}

func leakNoPut(p *bitset.Pool) {
	s := p.Get() // want `not Put on every path`
	use(s)
}

func leakLoopReturn(p *bitset.Pool, xs []int) {
	s := p.Get() // want `not Put on every path`
	for _, x := range xs {
		if x < 0 {
			return // leaks s
		}
	}
	p.Put(s)
}

func balancedBranches(p *bitset.Pool, cond bool) {
	s := p.Get()
	if cond {
		p.Put(s)
		return
	}
	p.Put(s)
}

func deferredPut(p *bitset.Pool) {
	s := p.Get()
	defer p.Put(s)
	use(s)
}

func breakThenPut(p *bitset.Pool, xs []int) {
	s := p.Get()
	for _, x := range xs {
		if x > 10 {
			break
		}
		use(s)
	}
	p.Put(s)
}

func panicIsExempt(p *bitset.Pool, cond bool) {
	s := p.Get()
	if cond {
		panic("invariant broken")
	}
	p.Put(s)
}

func ownershipReturned(p *bitset.Pool) bitset.Set {
	s := p.Get()
	use(s)
	return s // ownership transfer: clean
}

func ownershipAppended(p *bitset.Pool, out []bitset.Set) []bitset.Set {
	s := p.Get()
	out = append(out, s) // ownership transfer: clean
	return out
}

type keeper struct{ held bitset.Set }

func ownershipStored(p *bitset.Pool, k *keeper) {
	s := p.Get()
	k.held = s // ownership transfer: clean
}

func suppressed(p *bitset.Pool) {
	s := p.Get() //dual:allow(bitsetalias: handed to caller via package registry)
	use(s)
}
