// Package bitsetalias guards the bitset scratch-ownership discipline.
//
// Rule 1 — aliasing: the destination-style ops (IntersectInto, UnionInto,
// DiffInto, ComplementInto, CopyFrom) are word-parallel, so aliasing the
// destination with an operand is well-defined today — but the moment any of
// them stops being per-word independent (a future shifted or carry-borrow
// op), every aliasing call site becomes silent corruption. The analyzer
// therefore flags every call where two of {receiver, operands, destination}
// are syntactically the same expression. Intentional in-place accumulation
// (`acc.UnionInto(e, acc)`) carries //dual:allow(bitsetalias: in-place …),
// which doubles as a greppable registry of the sites to audit if the
// word-parallel contract ever changes. Degenerate source aliasing
// (`x.DiffInto(x, dst)` ≡ clear, `x.IntersectInto(x, dst)` ≡ copy) is
// almost certainly a bug and gets a sharper message.
//
// Rule 2 — pool hygiene: a bitset.Pool Get whose result stays function-
// local must be Put on every path to a return (or covered by a defer);
// otherwise the walker leaks a set per call and the steady-state
// allocation-free guarantee erodes pool miss by pool miss. Sets that
// escape (returned, stored into a structure, captured by a closure) are
// ownership transfers and exempt.
package bitsetalias

import (
	"go/ast"
	"go/types"

	"dualspace/internal/analysis"
)

const bitsetPkg = "dualspace/internal/bitset"

// Analyzer is the bitsetalias rule.
var Analyzer = &analysis.Analyzer{
	Name: "bitsetalias",
	Doc:  "flag aliased destination-style bitset calls and pool Gets without a Put on every path",
	Run:  run,
}

// intoOps maps each destination-style method to the argument index of its
// destination (receiver and remaining arguments are sources).
var intoOps = map[string]int{
	"IntersectInto":      1,
	"UnionInto":          1,
	"DiffInto":           1,
	"ComplementInto":     0,
	"CopyFrom":           0, // dst is the receiver; arg 0 is the source
	"IntersectIntoCount": 1, // fused variants share the Into aliasing contract
	"IntersectIntoAny":   1,
	"UnionIntoCount":     1,
	"DiffIntoCount":      1,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				checkAliasing(pass, call)
			}
			return true
		})
	}
	analysis.FuncBodies(pass.Files, func(decl *ast.FuncDecl, body *ast.BlockStmt) {
		checkPool(pass, body)
	})
	// Function literals are their own Get/Put scope (checkPool does not
	// descend into them from the enclosing declaration).
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				checkPool(pass, lit.Body)
			}
			return true
		})
	}
	return nil
}

func checkAliasing(pass *analysis.Pass, call *ast.CallExpr) {
	for method, dstIdx := range intoOps {
		recv, ok := analysis.MethodOn(pass.TypesInfo, call, bitsetPkg, "Set", method)
		if !ok || len(call.Args) != dstIdx+1 {
			continue
		}
		// Participants in call order: receiver, then arguments. For
		// CopyFrom the receiver is the destination; for the others the
		// last argument is.
		exprs := append([]ast.Expr{recv}, call.Args...)
		texts := make([]string, len(exprs))
		for i, e := range exprs {
			texts[i] = types.ExprString(ast.Unparen(e))
		}
		dst := dstIdx + 1
		if method == "CopyFrom" {
			dst = 0
		}
		for i := range texts {
			for j := i + 1; j < len(texts); j++ {
				if texts[i] != texts[j] {
					continue
				}
				if i != dst && j != dst {
					pass.Reportf(call.Pos(), "%s with aliased sources %q is degenerate (the result is a copy or a clear); this is almost certainly a bug", method, texts[i])
				} else {
					pass.Reportf(call.Pos(), "%s destination aliases source %q; if intentional in-place use, annotate with //dual:allow(bitsetalias: ...)", method, texts[i])
				}
				return
			}
		}
		return
	}
}

// checkPool enforces Get/Put pairing per function body.
func checkPool(pass *analysis.Pass, body *ast.BlockStmt) {
	info := pass.TypesInfo
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // literals are audited as their own scope below
		}
		assign, ok := n.(*ast.AssignStmt)
		if !ok || len(assign.Lhs) != 1 || len(assign.Rhs) != 1 {
			return true
		}
		call, ok := assign.Rhs[0].(*ast.CallExpr)
		if !ok {
			return true
		}
		if _, ok := analysis.MethodOn(info, call, bitsetPkg, "Pool", "Get"); !ok {
			return true
		}
		id, ok := assign.Lhs[0].(*ast.Ident)
		if !ok || id.Name == "_" {
			return true
		}
		obj := info.Defs[id]
		if obj == nil {
			obj = info.Uses[id]
		}
		if obj == nil {
			return true
		}
		if escapes(info, body, obj, call) {
			return true
		}
		w := &putWalker{info: info, v: obj}
		if w.deferredPut(body) {
			return true
		}
		after := stmtsAfter(body, assign)
		if after == nil {
			return true // Get buried in an expression position we can't order; skip
		}
		if exitPut, _ := w.scan(after, false); !exitPut {
			pass.Reportf(call.Pos(), "bitset.Pool Get result %q is not Put on every path to return; leak erodes the allocation-free steady state", obj.Name())
		}
		return true
	})
}

// escapes reports whether v's ownership leaves the function: returned,
// stored into a field/element/map, appended into a slice, placed in a
// composite literal, sent on a channel, reassigned wholesale, or captured
// by a function literal. Plain calls taking v are uses, not escapes — a
// forgotten Put after compute(v) is exactly the leak this rule exists to
// catch.
func escapes(info *types.Info, body *ast.BlockStmt, v types.Object, get *ast.CallExpr) bool {
	esc := false
	var inLit int
	ast.Inspect(body, func(n ast.Node) bool {
		if esc {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			if analysis.UsesObject(info, n.Body, v) {
				esc = true
			}
			return false
		case *ast.ReturnStmt:
			for _, r := range n.Results {
				if analysis.UsesObject(info, r, v) {
					esc = true
				}
			}
		case *ast.CallExpr:
			if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "append" {
				for _, a := range n.Args[1:] {
					if uid, ok := ast.Unparen(a).(*ast.Ident); ok && info.Uses[uid] == v {
						esc = true
					}
				}
			}
		case *ast.CompositeLit:
			for _, elt := range n.Elts {
				if analysis.UsesObject(info, elt, v) {
					esc = true
				}
			}
		case *ast.SendStmt:
			if analysis.UsesObject(info, n.Value, v) {
				esc = true
			}
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				switch l := lhs.(type) {
				case *ast.SelectorExpr, *ast.IndexExpr:
					if i < len(n.Rhs) && analysis.UsesObject(info, n.Rhs[i], v) {
						esc = true
					}
					_ = l
				case *ast.Ident:
					// Re-binding another name to v (w := v) hands the set
					// to an alias this per-name analysis cannot follow.
					if info.Uses[l] != v && i < len(n.Rhs) {
						if r, ok := n.Rhs[i].(*ast.Ident); ok && info.Uses[r] == v {
							esc = true
						}
					}
				}
			}
		}
		return true
	})
	_ = inLit
	_ = get
	return esc
}

// stmtsAfter returns the statement list from the statement containing
// target (exclusive) to the end of its enclosing block, wrapped so that
// enclosing blocks' tails follow. For simplicity the search stops at the
// innermost block; paths that leave it re-enter the scan through the
// enclosing structured statement, which the scanner treats conservatively.
func stmtsAfter(body *ast.BlockStmt, target ast.Stmt) []ast.Stmt {
	var out []ast.Stmt
	var find func(b *ast.BlockStmt) bool
	find = func(b *ast.BlockStmt) bool {
		for i, s := range b.List {
			if s == target {
				out = b.List[i+1:]
				return true
			}
			found := false
			ast.Inspect(s, func(n ast.Node) bool {
				if found {
					return false
				}
				if inner, ok := n.(*ast.BlockStmt); ok && inner != b {
					if find(inner) {
						found = true
						// The remainder of the outer block follows the
						// inner tail on fallthrough paths.
						out = append(append([]ast.Stmt{}, out...), b.List[i+1:]...)
						return false
					}
				}
				return true
			})
			if found {
				return true
			}
		}
		return false
	}
	if find(body) {
		return out
	}
	return nil
}

type putWalker struct {
	info *types.Info
	v    types.Object
}

// isPut reports whether n is (or contains, for simple statements) a
// pool.Put(v) call.
func (w *putWalker) isPut(n ast.Node) bool {
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		if found {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if _, ok := analysis.MethodOn(w.info, call, bitsetPkg, "Pool", "Put"); !ok {
			return true
		}
		if len(call.Args) == 1 {
			if id, ok := ast.Unparen(call.Args[0]).(*ast.Ident); ok && w.info.Uses[id] == w.v {
				found = true
			}
		}
		return !found
	})
	return found
}

func (w *putWalker) deferredPut(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if d, ok := n.(*ast.DeferStmt); ok && w.isPut(d.Call) {
			found = true
		}
		return !found
	})
	return found
}

// scan walks a statement list with the current "already Put" state and
// reports (exitPut, sawTerminator): whether every path that falls off the
// end of the list has Put the set, and whether the list unconditionally
// terminates (returns/panics on all paths). A return reached with
// put == false makes the whole scan fail by returning exitPut == false
// immediately.
func (w *putWalker) scan(stmts []ast.Stmt, put bool) (exitPut bool, terminated bool) {
	for _, s := range stmts {
		switch s := s.(type) {
		case *ast.ReturnStmt:
			return put, true
		case *ast.ExprStmt, *ast.DeferStmt, *ast.GoStmt, *ast.AssignStmt, *ast.DeclStmt, *ast.IncDecStmt, *ast.SendStmt:
			if w.isPut(s) {
				put = true
			}
			if es, ok := s.(*ast.ExprStmt); ok && isPanic(es) {
				return true, true // panic paths are exempt
			}
		case *ast.BlockStmt:
			bp, bt := w.scan(s.List, put)
			if bt {
				return bp, true
			}
			put = bp
		case *ast.IfStmt:
			thenPut, thenTerm := w.scan(s.Body.List, put)
			elsePut, elseTerm := put, false
			switch e := s.Else.(type) {
			case *ast.BlockStmt:
				elsePut, elseTerm = w.scan(e.List, put)
			case *ast.IfStmt:
				elsePut, elseTerm = w.scan([]ast.Stmt{e}, put)
			}
			if !thenPut && thenTerm {
				return false, true // a then-branch return leaks
			}
			if !elsePut && elseTerm {
				return false, true
			}
			if thenTerm && elseTerm {
				return thenPut && elsePut, true
			}
			switch {
			case thenTerm:
				put = elsePut
			case elseTerm:
				put = thenPut
			default:
				put = thenPut && elsePut
			}
		case *ast.ForStmt:
			if leaked := w.loopLeaks(s.Body); leaked {
				return false, true
			}
		case *ast.RangeStmt:
			if leaked := w.loopLeaks(s.Body); leaked {
				return false, true
			}
		case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
			allPut, allTerm, hasDefault := true, true, false
			caseBodies(s, func(isDefault bool, body []ast.Stmt) {
				if isDefault {
					hasDefault = true
				}
				cp, ct := w.scan(body, put)
				if !cp && ct {
					allPut = false
				}
				allPut = allPut && cp
				allTerm = allTerm && ct
			})
			if !allPut && allTerm {
				return false, true
			}
			if allPut && hasDefault {
				put = true
			}
			if allTerm && hasDefault {
				return allPut, true
			}
		case *ast.LabeledStmt:
			lp, lt := w.scan([]ast.Stmt{s.Stmt}, put)
			if lt {
				return lp, true
			}
			put = lp
		case *ast.BranchStmt:
			// break/continue/goto jump somewhere this list-structured scan
			// cannot follow; assume the target path performs the Put.
			// Missing a leak through a jump is the price of not reporting
			// false leaks on the common break-then-Put shape.
			return true, true
		}
	}
	return put, false
}

// loopLeaks reports whether a loop body can return from the function
// without a Put. Approximation: a body containing a return statement and
// no Put at all leaks; a body with both is assumed to sequence them
// correctly (the structured scan cannot order statements across
// iterations).
func (w *putWalker) loopLeaks(body *ast.BlockStmt) bool {
	hasReturn := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ReturnStmt:
			hasReturn = true
		}
		return !hasReturn
	})
	return hasReturn && !w.isPut(body)
}

func isPanic(es *ast.ExprStmt) bool {
	call, ok := es.X.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "panic"
}

func caseBodies(s ast.Stmt, visit func(isDefault bool, body []ast.Stmt)) {
	switch s := s.(type) {
	case *ast.SwitchStmt:
		for _, c := range s.Body.List {
			cc := c.(*ast.CaseClause)
			visit(cc.List == nil, cc.Body)
		}
	case *ast.TypeSwitchStmt:
		for _, c := range s.Body.List {
			cc := c.(*ast.CaseClause)
			visit(cc.List == nil, cc.Body)
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			visit(cc.Comm == nil, cc.Body)
		}
	}
}
