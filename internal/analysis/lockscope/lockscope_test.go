package lockscope_test

import (
	"testing"

	"dualspace/internal/analysis/analysistest"
	"dualspace/internal/analysis/lockscope"
)

func TestLocks(t *testing.T) {
	analysistest.Run(t, lockscope.Analyzer, "locks")
}
