// Package lockscope enforces the serving layer's lock-granularity
// invariant: a sync.Mutex/RWMutex must never be held across a duality
// decision (engine.Engine.Decide, Session.Decide, core.Decider.*) or a
// channel send. Decisions are unbounded work — the batch.Cache shard locks
// and the service mutexes exist to guard O(1) map/list operations, and
// holding one across a decision serializes the whole shard (or deadlocks
// against a waiter the decision is coalescing with). Channel sends block
// arbitrarily when the peer is slow.
//
// The analysis is a structured, per-function scan: it tracks which mutex
// expressions are locked at each point (including defer-Unlock, which
// holds to function end) and flags decision calls and sends inside a
// critical section. It is intentionally syntactic about identity (the
// lock expression's text) and does not follow locks across function
// boundaries; helpers that lock and let a callee unlock carry
// //dual:allow(lockscope: reason).
package lockscope

import (
	"go/ast"
	"go/types"

	"dualspace/internal/analysis"
)

// Analyzer is the lockscope rule.
var Analyzer = &analysis.Analyzer{
	Name: "lockscope",
	Doc:  "mutexes must not be held across engine decisions or channel sends",
	Run:  run,
}

// decisionMethods are the unbounded-work calls that must run lock-free.
var decisionMethods = map[string]bool{
	"Decide": true, "DecideContext": true, "DecideWith": true,
	"DecideParallel": true, "DecideParallelContext": true,
	"TrSubset": true, "TrSubsetContext": true,
}

// decisionPkgs are the packages whose Decide-family methods count.
var decisionPkgs = map[string]bool{
	"dualspace/internal/engine": true,
	"dualspace/internal/core":   true,
}

func run(pass *analysis.Pass) error {
	analysis.FuncBodies(pass.Files, func(decl *ast.FuncDecl, body *ast.BlockStmt) {
		s := &scanner{pass: pass, held: map[string]bool{}}
		s.block(body.List)
	})
	// Function literals get their own scan: goroutine bodies and handler
	// closures are exactly where lock-across-send bugs live.
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				s := &scanner{pass: pass, held: map[string]bool{}}
				s.block(lit.Body.List)
			}
			return true
		})
	}
	return nil
}

type scanner struct {
	pass *analysis.Pass
	held map[string]bool // lock expression text → held
}

func (s *scanner) anyHeld() (string, bool) {
	for k, v := range s.held {
		if v {
			return k, true
		}
	}
	return "", false
}

// mutexCall classifies X.Lock/RLock/Unlock/RUnlock where X is a
// sync.Mutex or sync.RWMutex (possibly behind a pointer), returning the
// normalized lock identity and whether it acquires.
func (s *scanner) mutexCall(call *ast.CallExpr) (id string, acquire, release bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false, false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock":
		acquire = true
	case "Unlock", "RUnlock":
		release = true
	default:
		return "", false, false
	}
	selection, ok := s.pass.TypesInfo.Selections[sel]
	if !ok {
		return "", false, false
	}
	recv := selection.Recv()
	if !analysis.NamedFrom(recv, "sync", "Mutex") && !analysis.NamedFrom(recv, "sync", "RWMutex") {
		return "", false, false
	}
	return types.ExprString(ast.Unparen(sel.X)), acquire, release
}

// block scans a statement list, mutating the held set in order.
func (s *scanner) block(stmts []ast.Stmt) {
	for _, st := range stmts {
		s.stmt(st)
	}
}

func (s *scanner) stmt(st ast.Stmt) {
	switch st := st.(type) {
	case *ast.ExprStmt:
		s.expr(st.X)
	case *ast.SendStmt:
		if lock, held := s.anyHeld(); held {
			s.pass.Reportf(st.Arrow, "channel send while holding %s; sends block unboundedly — release the lock first", lock)
		}
		s.exprOnly(st.Chan)
		s.exprOnly(st.Value)
	case *ast.AssignStmt:
		for _, e := range st.Rhs {
			s.expr(e)
		}
	case *ast.DeferStmt:
		if id, _, release := s.mutexCall(st.Call); release {
			// defer Unlock: the lock is held for the remainder of the
			// function — model by keeping it held from here on.
			s.held[id] = true
		} else {
			s.exprOnly(st.Call)
		}
	case *ast.GoStmt:
		s.exprOnly(st.Call)
	case *ast.BlockStmt:
		s.block(st.List)
	case *ast.IfStmt:
		if st.Init != nil {
			s.stmt(st.Init)
		}
		s.exprOnly(st.Cond)
		s.branch(st.Body.List)
		if st.Else != nil {
			s.branch([]ast.Stmt{st.Else})
		}
	case *ast.ForStmt:
		s.branch(st.Body.List)
	case *ast.RangeStmt:
		s.exprOnly(st.X)
		s.branch(st.Body.List)
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		var bodies [][]ast.Stmt
		switch sw := st.(type) {
		case *ast.SwitchStmt:
			for _, c := range sw.Body.List {
				bodies = append(bodies, c.(*ast.CaseClause).Body)
			}
		case *ast.TypeSwitchStmt:
			for _, c := range sw.Body.List {
				bodies = append(bodies, c.(*ast.CaseClause).Body)
			}
		case *ast.SelectStmt:
			for _, c := range sw.Body.List {
				cc := c.(*ast.CommClause)
				if cc.Comm != nil {
					s.branch([]ast.Stmt{cc.Comm})
				}
				bodies = append(bodies, cc.Body)
			}
		}
		for _, b := range bodies {
			s.branch(b)
		}
	case *ast.LabeledStmt:
		s.stmt(st.Stmt)
	case *ast.ReturnStmt:
		for _, r := range st.Results {
			s.exprOnly(r)
		}
	}
}

// branch scans nested statements against a copy of the current lock state:
// acquisitions and releases inside a branch are visible within it but do
// not leak into the fallthrough path (branches are assumed balanced; an
// unbalanced branch is a shape this structured scan cannot follow and is
// the caller's responsibility to annotate).
func (s *scanner) branch(stmts []ast.Stmt) {
	saved := make(map[string]bool, len(s.held))
	for k, v := range s.held {
		saved[k] = v
	}
	s.block(stmts)
	s.held = saved
}

// expr scans an expression in statement position: lock/unlock calls mutate
// the state; decision calls are checked against it.
func (s *scanner) expr(e ast.Expr) {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		s.exprOnly(e)
		return
	}
	if id, acquire, release := s.mutexCall(call); acquire || release {
		s.held[id] = acquire
		return
	}
	s.exprOnly(e)
}

// exprOnly checks decision calls (and nested sends inside closures are
// handled by the literal's own scan) without mutating lock state.
func (s *scanner) exprOnly(e ast.Expr) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if lock, held := s.anyHeld(); held {
			if name, ok := s.decisionCall(call); ok {
				s.pass.Reportf(call.Pos(), "%s called while holding %s; decisions are unbounded work — release the lock first", name, lock)
			}
		}
		return true
	})
}

// decisionCall reports whether call is a Decide-family method on an
// engine/core type (including the engine.Engine interface).
func (s *scanner) decisionCall(call *ast.CallExpr) (string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || !decisionMethods[sel.Sel.Name] {
		return "", false
	}
	selection, ok := s.pass.TypesInfo.Selections[sel]
	if !ok || selection.Kind() != types.MethodVal {
		return "", false
	}
	t := selection.Recv()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return "", false
	}
	if !decisionPkgs[analysis.PkgPath(named.Obj())] {
		return "", false
	}
	return named.Obj().Name() + "." + sel.Sel.Name, true
}
