// Lock-scope fixture: mutexes held across decisions and channel sends.
// The engine/session types are the real ones, imported from the module, so
// the receiver-type matching under test is the production configuration.
package fixture

import (
	"context"
	"sync"

	"dualspace/internal/engine"
	"dualspace/internal/hypergraph"
)

type cacheShard struct {
	mu      sync.Mutex
	entries map[string]int
}

func decideUnderLock(ctx context.Context, s *cacheShard, ses *engine.Session, g, h *hypergraph.Hypergraph) error {
	s.mu.Lock()
	_, err := ses.Decide(ctx, g, h) // want `Session.Decide called while holding s.mu`
	s.mu.Unlock()
	return err
}

func decideUnderDeferredLock(ctx context.Context, s *cacheShard, eng engine.Engine, g, h *hypergraph.Hypergraph) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, err := eng.Decide(ctx, g, h) // want `Engine.Decide called while holding s.mu`
	return err
}

func sendUnderLock(s *cacheShard, ch chan int) {
	s.mu.Lock()
	ch <- 1 // want `channel send while holding s.mu`
	s.mu.Unlock()
}

func lockDroppedFirst(ctx context.Context, s *cacheShard, ses *engine.Session, g, h *hypergraph.Hypergraph) error {
	s.mu.Lock()
	s.entries["k"] = 1
	s.mu.Unlock()
	_, err := ses.Decide(ctx, g, h) // lock released: clean
	return err
}

func branchBalanced(ctx context.Context, s *cacheShard, ses *engine.Session, g, h *hypergraph.Hypergraph, cached bool) error {
	if cached {
		s.mu.Lock()
		s.entries["k"]++
		s.mu.Unlock()
	}
	_, err := ses.Decide(ctx, g, h) // branch released its lock: clean
	return err
}

func sendAfterUnlockInSelect(s *cacheShard, ch chan int, done chan struct{}) {
	s.mu.Lock()
	v := s.entries["k"]
	s.mu.Unlock()
	select {
	case ch <- v: // clean
	case <-done:
	}
}

func suppressedHandoff(ctx context.Context, s *cacheShard, ses *engine.Session, g, h *hypergraph.Hypergraph) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, err := ses.Decide(ctx, g, h) //dual:allow(lockscope: single-threaded test shard)
	return err
}

func goroutineBody(s *cacheShard, ch chan int) {
	go func() {
		s.mu.Lock()
		ch <- 1 // want `channel send while holding s.mu`
		s.mu.Unlock()
	}()
}

// Resilience code shapes (PR 9): a session pool that swaps poisoned
// sessions for fresh ones under its roster lock. The slot hand-back is a
// channel send — holding the roster lock across it couples the lock to
// pool-channel backpressure (every Acquire would contend on a send that
// may never complete), so the send must happen after Unlock, exactly as
// engine.SessionPool.Release does.
type sessionRoster struct {
	mu    sync.Mutex
	all   []*engine.Session
	slots chan *engine.Session
}

func replaceUnderLock(p *sessionRoster, fresh *engine.Session) {
	p.mu.Lock()
	p.all[0] = fresh
	p.slots <- fresh // want `channel send while holding p.mu`
	p.mu.Unlock()
}

func replaceThenRelease(p *sessionRoster, fresh *engine.Session) {
	p.mu.Lock()
	p.all[0] = fresh
	p.mu.Unlock()
	p.slots <- fresh // roster updated under the lock, slot handed back outside: clean
}

func decideDuringSwap(ctx context.Context, p *sessionRoster, ses *engine.Session, g, h *hypergraph.Hypergraph) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	_, err := ses.Decide(ctx, g, h) // want `Session.Decide called while holding p.mu`
	return err
}
