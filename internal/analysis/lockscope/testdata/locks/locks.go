// Lock-scope fixture: mutexes held across decisions and channel sends.
// The engine/session types are the real ones, imported from the module, so
// the receiver-type matching under test is the production configuration.
package fixture

import (
	"context"
	"sync"

	"dualspace/internal/engine"
	"dualspace/internal/hypergraph"
)

type cacheShard struct {
	mu      sync.Mutex
	entries map[string]int
}

func decideUnderLock(ctx context.Context, s *cacheShard, ses *engine.Session, g, h *hypergraph.Hypergraph) error {
	s.mu.Lock()
	_, err := ses.Decide(ctx, g, h) // want `Session.Decide called while holding s.mu`
	s.mu.Unlock()
	return err
}

func decideUnderDeferredLock(ctx context.Context, s *cacheShard, eng engine.Engine, g, h *hypergraph.Hypergraph) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, err := eng.Decide(ctx, g, h) // want `Engine.Decide called while holding s.mu`
	return err
}

func sendUnderLock(s *cacheShard, ch chan int) {
	s.mu.Lock()
	ch <- 1 // want `channel send while holding s.mu`
	s.mu.Unlock()
}

func lockDroppedFirst(ctx context.Context, s *cacheShard, ses *engine.Session, g, h *hypergraph.Hypergraph) error {
	s.mu.Lock()
	s.entries["k"] = 1
	s.mu.Unlock()
	_, err := ses.Decide(ctx, g, h) // lock released: clean
	return err
}

func branchBalanced(ctx context.Context, s *cacheShard, ses *engine.Session, g, h *hypergraph.Hypergraph, cached bool) error {
	if cached {
		s.mu.Lock()
		s.entries["k"]++
		s.mu.Unlock()
	}
	_, err := ses.Decide(ctx, g, h) // branch released its lock: clean
	return err
}

func sendAfterUnlockInSelect(s *cacheShard, ch chan int, done chan struct{}) {
	s.mu.Lock()
	v := s.entries["k"]
	s.mu.Unlock()
	select {
	case ch <- v: // clean
	case <-done:
	}
}

func suppressedHandoff(ctx context.Context, s *cacheShard, ses *engine.Session, g, h *hypergraph.Hypergraph) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, err := ses.Decide(ctx, g, h) //dual:allow(lockscope: single-threaded test shard)
	return err
}

func goroutineBody(s *cacheShard, ch chan int) {
	go func() {
		s.mu.Lock()
		ch <- 1 // want `channel send while holding s.mu`
		s.mu.Unlock()
	}()
}
