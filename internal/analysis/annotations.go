package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// The annotation grammar, shared by the analyzers and the build-time gates:
//
//	//dual:allocfree
//	    marks the annotated function as steady-state allocation-free; the
//	    allocfree analyzer rejects allocating constructs inside it and the
//	    escape-analysis gate watches its variables for new heap escapes.
//
//	//dual:allow(rule)
//	//dual:allow(rule: reason)
//	//dual:allow(rule1, rule2: reason)
//	    suppresses findings of the named analyzers on the same line or the
//	    line directly below the comment. The reason is free text, kept in
//	    the source as documentation of why the construct is intentional.

// AllocFreeMarker is the exact annotation line that marks a function
// allocation-free.
const AllocFreeMarker = "//dual:allocfree"

const allowPrefix = "//dual:allow("

// ParseAllow parses a //dual:allow(...) comment and returns the rule names
// it suppresses, or nil if the text is not a well-formed allow annotation.
func ParseAllow(text string) []string {
	text = strings.TrimSpace(text)
	if !strings.HasPrefix(text, allowPrefix) || !strings.HasSuffix(text, ")") {
		return nil
	}
	body := text[len(allowPrefix) : len(text)-1]
	// A reason, when present, follows the first colon.
	if i := strings.IndexByte(body, ':'); i >= 0 {
		body = body[:i]
	}
	var rules []string
	for _, r := range strings.Split(body, ",") {
		r = strings.TrimSpace(r)
		if r == "" {
			return nil
		}
		for _, c := range r {
			if c != '-' && c != '_' && (c < 'a' || c > 'z') && (c < '0' || c > '9') {
				return nil
			}
		}
		rules = append(rules, r)
	}
	return rules
}

// IsAllocFree reports whether fn carries the //dual:allocfree annotation in
// its doc comment.
func IsAllocFree(fn *ast.FuncDecl) bool {
	if fn.Doc == nil {
		return false
	}
	for _, c := range fn.Doc.List {
		if strings.TrimSpace(c.Text) == AllocFreeMarker {
			return true
		}
	}
	return false
}

// allowIndex maps file → line → set of suppressed rule names. A comment on
// line L suppresses findings on lines L and L+1, so both a trailing
// same-line comment and a comment directly above the flagged statement
// work.
type allowIndex map[string]map[int]map[string]bool

func collectAllows(fset *token.FileSet, files []*ast.File) allowIndex {
	idx := make(allowIndex)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rules := ParseAllow(c.Text)
				if rules == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				lines := idx[pos.Filename]
				if lines == nil {
					lines = make(map[int]map[string]bool)
					idx[pos.Filename] = lines
				}
				for _, ln := range []int{pos.Line, pos.Line + 1} {
					set := lines[ln]
					if set == nil {
						set = make(map[string]bool)
						lines[ln] = set
					}
					for _, r := range rules {
						set[r] = true
					}
				}
			}
		}
	}
	return idx
}

func (idx allowIndex) suppressed(rule string, pos token.Position) bool {
	lines := idx[pos.Filename]
	if lines == nil {
		return false
	}
	return lines[pos.Line][rule]
}
