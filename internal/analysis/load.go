package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// The loader type-checks module packages without golang.org/x/tools: it
// asks `go list -export -deps -json` for every dependency's compiled export
// data, then parses and checks each target package from source with a gc
// importer that resolves imports from those export files. Each package is
// checked independently, so cross-package type identity is by path+name
// (analyzers must compare types.Object packages by Path(), never by
// pointer) — the same rule x/tools drivers follow.
//
// Only non-test sources (go list's GoFiles) are analyzed: the enforced
// invariants are about production hot paths, and _test.go files routinely
// violate them on purpose (intentional aliasing in property tests, tight
// loops without ctx, and so on).

// Package is one parsed, type-checked target package.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
}

type listPkg struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	DepOnly    bool
	Standard   bool
	Error      *struct{ Err string }
}

func goList(dir string, args ...string) ([]*listPkg, error) {
	cmd := exec.Command("go", append([]string{"list", "-e", "-export", "-deps", "-json"}, args...)...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(args, " "), err, stderr.String())
	}
	var pkgs []*listPkg
	dec := json.NewDecoder(&stdout)
	for {
		p := new(listPkg)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// ExportIndex maps each import path reachable from patterns to its compiled
// export-data file. It is the dependency universe for CheckFiles.
func ExportIndex(dir string, patterns ...string) (map[string]string, error) {
	pkgs, err := goList(dir, patterns...)
	if err != nil {
		return nil, err
	}
	idx := make(map[string]string, len(pkgs))
	for _, p := range pkgs {
		if p.Export != "" {
			idx[p.ImportPath] = p.Export
		}
	}
	return idx, nil
}

func exportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q (extend the loader's package patterns)", path)
		}
		return os.Open(file)
	})
}

func newInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

// CheckFiles parses and type-checks the given source files as one package,
// resolving imports from the export index. Used by the fixture harness
// (analysistest) and the loader itself.
func CheckFiles(fset *token.FileSet, path string, filenames []string, exports map[string]string) (*Package, error) {
	var files []*ast.File
	for _, name := range filenames {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	var errs []string
	conf := types.Config{
		Importer: exportImporter(fset, exports),
		Error:    func(err error) { errs = append(errs, err.Error()) },
	}
	info := newInfo()
	tpkg, _ := conf.Check(path, fset, files, info)
	if len(errs) > 0 {
		return nil, fmt.Errorf("type-checking %s:\n  %s", path, strings.Join(errs, "\n  "))
	}
	return &Package{
		ImportPath: path,
		Dir:        filepath.Dir(filenames[0]),
		Fset:       fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
	}, nil
}

// Load lists patterns in dir and returns every matched (non-dependency)
// package parsed and type-checked from source.
func Load(dir string, patterns ...string) ([]*Package, error) {
	listed, err := goList(dir, patterns...)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(listed))
	for _, p := range listed {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	fset := token.NewFileSet()
	imp := exportImporter(fset, exports)
	var out []*Package
	for _, lp := range listed {
		if lp.DepOnly || lp.Standard {
			continue
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("%s: %s", lp.ImportPath, lp.Error.Err)
		}
		var files []*ast.File
		for _, name := range lp.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, err
			}
			files = append(files, f)
		}
		if len(files) == 0 {
			continue
		}
		var errs []string
		conf := types.Config{
			Importer: imp,
			Error:    func(err error) { errs = append(errs, err.Error()) },
		}
		info := newInfo()
		tpkg, _ := conf.Check(lp.ImportPath, fset, files, info)
		if len(errs) > 0 {
			return nil, fmt.Errorf("type-checking %s:\n  %s", lp.ImportPath, strings.Join(errs, "\n  "))
		}
		out = append(out, &Package{
			ImportPath: lp.ImportPath,
			Dir:        lp.Dir,
			Fset:       fset,
			Files:      files,
			Types:      tpkg,
			Info:       info,
		})
	}
	return out, nil
}

// ModuleRoot walks up from dir to the directory containing go.mod.
func ModuleRoot(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(abs, "go.mod")); err == nil {
			return abs, nil
		}
		parent := filepath.Dir(abs)
		if parent == abs {
			return "", fmt.Errorf("no go.mod above %s", dir)
		}
		abs = parent
	}
}
