package dualspace

// Scale tests: moderately large instances exercising the engines at
// laptop scale. Skipped under -short.

import (
	"testing"

	"dualspace/internal/core"
	"dualspace/internal/gen"
	"dualspace/internal/itemsets"
	"dualspace/internal/logspace"
	"dualspace/internal/transversal"

	"math/rand"
)

func TestStressMatching8(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	// |H| = 256 minimal transversals over 16 vertices.
	g, h := gen.Matching(8), gen.MatchingDual(8)
	res, err := core.Decide(g, h)
	if err != nil || !res.Dual {
		t.Fatalf("matching-8: %v %v", res, err)
	}
	// Perturbed: must find a witness quickly despite 255 remaining edges.
	bad := gen.DropEdge(h, 137)
	res, err = core.Decide(g, bad)
	if err != nil || res.Dual {
		t.Fatalf("matching-8 dropped: %v %v", res, err)
	}
	if res.Reason == core.ReasonNewTransversal && !g.IsNewTransversal(res.Witness, bad) {
		t.Fatal("invalid witness at scale")
	}
}

func TestStressThreshold10(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	// |G| = C(10,4) = 210, |H| = C(10,7) = 120.
	g, h := gen.Threshold(10, 4), gen.ThresholdDual(10, 4)
	res, err := core.Decide(g, h)
	if err != nil || !res.Dual {
		t.Fatalf("threshold-10-4: %v %v", res, err)
	}
	par, err := core.DecideParallel(g, h, 0)
	if err != nil || !par.Dual {
		t.Fatalf("parallel threshold-10-4: %v %v", par, err)
	}
	if par.Stats.Nodes != res.Stats.Nodes {
		t.Errorf("parallel visited %d nodes, serial %d", par.Stats.Nodes, res.Stats.Nodes)
	}
}

func TestStressSelfDualMajority9(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	m := gen.Majority(9) // 126 edges of size 5 over 9 vertices, self-dual
	res, err := core.Decide(m, m)
	if err != nil || !res.Dual {
		t.Fatalf("majority-9: %v %v", res, err)
	}
}

func TestStressEnumeration(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	// tr of threshold(14, 3): C(14,12) = 91 transversals out of 364 edges.
	h := gen.Threshold(14, 3)
	if got, want := transversal.Count(h), binom(14, 12); got != want {
		t.Fatalf("count = %d, want %d", got, want)
	}
}

func binom(n, k int) int {
	r := 1
	for i := 0; i < k; i++ {
		r = r * (n - i) / (i + 1)
	}
	return r
}

func TestStressMiningWide(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	r := rand.New(rand.NewSource(2013))
	d := itemsets.GeneratePlanted(r, 14, 300,
		[][]int{{0, 1, 2, 3}, {4, 5, 6}, {7, 8}, {9, 10, 11, 12, 13}}, 0.1, 0.03)
	b, err := itemsets.ComputeBorders(d, 30)
	if err != nil {
		t.Fatal(err)
	}
	ap, err := itemsets.BordersApriori(d, 30)
	if err != nil {
		t.Fatal(err)
	}
	if !b.MaxFrequent.EqualAsFamily(ap.MaxFrequent) || !b.MinInfrequent.EqualAsFamily(ap.MinInfrequent) {
		t.Fatal("dualize-and-advance disagrees with apriori at scale")
	}
	okID, err := itemsets.VerifyBorderIdentity(b)
	if err != nil || !okID {
		t.Fatalf("border identity at scale: %v %v", okID, err)
	}
}

func TestStressCertificateMatching7(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	g := gen.Matching(7)
	h := gen.DropEdge(gen.MatchingDual(7), 100)
	pi, w, found, err := logspace.FindFailPath(g, h, logspace.Options{Mode: logspace.ModeReplay})
	if err != nil || !found {
		t.Fatalf("no certificate: %v", err)
	}
	if !g.IsNewTransversal(w, h) {
		t.Fatal("invalid witness")
	}
	spec := logspace.Certificate(g, h)
	if int64(len(pi))*spec.EntryBits > spec.TotalBits {
		t.Fatalf("certificate exceeds bound: %v", pi)
	}
	ok, _, err := logspace.VerifyFailPath(g, h, pi, logspace.Options{Mode: logspace.ModeStrict})
	if err != nil || !ok {
		t.Fatalf("strict verification failed: %v", err)
	}
}
